package kv_test

import (
	"bytes"
	"context"
	"testing"

	"edsc/kv"
)

func TestGetMultiFallbackLoop(t *testing.T) {
	ctx := context.Background()
	s := kv.NewMem("m") // Mem has no native batch support
	_ = s.Put(ctx, "a", []byte("1"))
	_ = s.Put(ctx, "b", []byte("2"))
	got, err := kv.GetMulti(ctx, s, []string{"a", "missing", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got["a"]) != "1" || string(got["b"]) != "2" {
		t.Fatalf("GetMulti = %v", got)
	}
	if _, present := got["missing"]; present {
		t.Fatal("missing key present in result")
	}
}

func TestPutMultiFallbackLoop(t *testing.T) {
	ctx := context.Background()
	s := kv.NewMem("m")
	pairs := map[string][]byte{"x": []byte("1"), "y": []byte("2"), "z": []byte("3")}
	if err := kv.PutMulti(ctx, s, pairs); err != nil {
		t.Fatal(err)
	}
	for k, want := range pairs {
		v, err := s.Get(ctx, k)
		if err != nil || !bytes.Equal(v, want) {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
}

// batchCounter verifies the helpers prefer the native implementation.
type batchCounter struct {
	kv.Store
	batchCalls int
}

func (b *batchCounter) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	b.batchCalls++
	out := map[string][]byte{}
	for _, k := range keys {
		if v, err := b.Store.Get(ctx, k); err == nil {
			out[k] = v
		}
	}
	return out, nil
}

func (b *batchCounter) PutMulti(ctx context.Context, pairs map[string][]byte) error {
	b.batchCalls++
	for k, v := range pairs {
		if err := b.Store.Put(ctx, k, v); err != nil {
			return err
		}
	}
	return nil
}

func TestHelpersPreferNativeBatch(t *testing.T) {
	ctx := context.Background()
	b := &batchCounter{Store: kv.NewMem("m")}
	if err := kv.PutMulti(ctx, b, map[string][]byte{"k": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.GetMulti(ctx, b, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if b.batchCalls != 2 {
		t.Fatalf("native batch calls = %d, want 2", b.batchCalls)
	}
}

func TestGetMultiPropagatesErrors(t *testing.T) {
	ctx := context.Background()
	s := kv.NewMem("m")
	_ = s.Close()
	if _, err := kv.GetMulti(ctx, s, []string{"a"}); err == nil {
		t.Fatal("closed store error swallowed")
	}
	if err := kv.PutMulti(ctx, s, map[string][]byte{"a": nil}); err == nil {
		t.Fatal("closed store error swallowed")
	}
}
