package kv_test

import (
	"context"
	"fmt"

	"edsc/kv"
)

// The common key-value interface: the same code runs against any store.
func ExampleStore() {
	ctx := context.Background()
	var store kv.Store = kv.NewMem("demo") // swap for any other implementation

	_ = store.Put(ctx, "greeting", []byte("hello"))
	v, _ := store.Get(ctx, "greeting")
	fmt.Println(string(v))

	_, err := store.Get(ctx, "absent")
	fmt.Println(kv.IsNotFound(err))
	// Output:
	// hello
	// true
}

// Typed access over any store — the paper's KeyValue<K,V>, with codecs.
func ExampleMap() {
	ctx := context.Background()
	type user struct {
		Name string `json:"name"`
	}
	users := kv.NewMap[int64, user](kv.NewMem("users"), kv.Int64Key{}, kv.JSONCodec[user]{})

	_ = users.Put(ctx, 7, user{Name: "ada"})
	u, _ := users.Get(ctx, 7)
	fmt.Println(u.Name)
	// Output:
	// ada
}

// Batched access uses a store's native batch support when present and
// falls back to per-key loops otherwise.
func ExampleGetMulti() {
	ctx := context.Background()
	store := kv.NewMem("demo")
	_ = kv.PutMulti(ctx, store, map[string][]byte{"a": []byte("1"), "b": []byte("2")})

	got, _ := kv.GetMulti(ctx, store, []string{"a", "b", "missing"})
	fmt.Println(len(got), string(got["a"]), string(got["b"]))
	// Output:
	// 2 1 2
}
