package kv

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// Codec converts typed values to and from the byte slices stored by a Store.
// Codecs must be safe for concurrent use.
type Codec[V any] interface {
	Encode(v V) ([]byte, error)
	Decode(data []byte) (V, error)
}

// KeyCodec converts typed keys to the string keys used by a Store. Encoding
// must be injective: distinct keys must map to distinct strings.
type KeyCodec[K any] interface {
	EncodeKey(k K) (string, error)
	DecodeKey(s string) (K, error)
}

// --- value codecs ---

// BytesCodec passes []byte values through unchanged (with a defensive copy,
// preserving the Store aliasing contract).
type BytesCodec struct{}

// Encode copies v.
func (BytesCodec) Encode(v []byte) ([]byte, error) { return append([]byte(nil), v...), nil }

// Decode copies data.
func (BytesCodec) Decode(data []byte) ([]byte, error) { return append([]byte(nil), data...), nil }

// StringCodec stores strings as their UTF-8 bytes.
type StringCodec struct{}

func (StringCodec) Encode(v string) ([]byte, error)    { return []byte(v), nil }
func (StringCodec) Decode(data []byte) (string, error) { return string(data), nil }

// Int64Codec stores int64 values as 8 big-endian bytes.
type Int64Codec struct{}

func (Int64Codec) Encode(v int64) ([]byte, error) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:], nil
}

func (Int64Codec) Decode(data []byte) (int64, error) {
	if len(data) != 8 {
		return 0, fmt.Errorf("kv: int64 value has %d bytes, want 8", len(data))
	}
	return int64(binary.BigEndian.Uint64(data)), nil
}

// Float64Codec stores float64 values as 8 big-endian IEEE-754 bytes.
type Float64Codec struct{}

func (Float64Codec) Encode(v float64) ([]byte, error) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:], nil
}

func (Float64Codec) Decode(data []byte) (float64, error) {
	if len(data) != 8 {
		return 0, fmt.Errorf("kv: float64 value has %d bytes, want 8", len(data))
	}
	return math.Float64frombits(binary.BigEndian.Uint64(data)), nil
}

// JSONCodec marshals values with encoding/json. The natural choice for
// document-style stores.
type JSONCodec[V any] struct{}

func (JSONCodec[V]) Encode(v V) ([]byte, error) { return json.Marshal(v) }

func (JSONCodec[V]) Decode(data []byte) (V, error) {
	var v V
	err := json.Unmarshal(data, &v)
	return v, err
}

// GobCodec marshals values with encoding/gob — the Go analogue of Java
// object serialization the paper's remote-process caches rely on.
type GobCodec[V any] struct{}

func (GobCodec[V]) Encode(v V) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (GobCodec[V]) Decode(data []byte) (V, error) {
	var v V
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v)
	return v, err
}

// --- key codecs ---

// StringKey uses strings as keys directly.
type StringKey struct{}

func (StringKey) EncodeKey(k string) (string, error) {
	if k == "" {
		return "", ErrEmptyKey
	}
	return k, nil
}

func (StringKey) DecodeKey(s string) (string, error) { return s, nil }

// Int64Key renders int64 keys in decimal.
type Int64Key struct{}

func (Int64Key) EncodeKey(k int64) (string, error) { return strconv.FormatInt(k, 10), nil }

func (Int64Key) DecodeKey(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
