package kv_test

import (
	"context"
	"testing"

	"edsc/kv"
)

// transparent is a do-nothing layer: no capabilities of its own, exposes
// Unwrap so the As walk falls through.
type transparent struct{ kv.Store }

func (w transparent) Unwrap() kv.Store { return w.Store }

// opaque wraps without exposing Unwrap: the walk must stop at it.
type opaque struct{ kv.Store }

// sealing exposes Unwrap but returns nil: the walk must stop *and* find
// nothing below.
type sealing struct{ kv.Store }

func (w sealing) Unwrap() kv.Store { return nil }

// gatedCAS statically implements kv.CompareAndPut but only intercepts it
// when armed — the Interceptor pattern for conditionally-supported
// capabilities.
type gatedCAS struct {
	kv.Store
	armed bool
	hits  int
}

func (w *gatedCAS) Unwrap() kv.Store { return w.Store }

func (w *gatedCAS) Intercepts(capability any) bool {
	if _, ok := capability.(*kv.CompareAndPut); ok {
		return w.armed
	}
	return true
}

func (w *gatedCAS) PutIfVersion(ctx context.Context, key string, value []byte, since kv.Version) (kv.Version, error) {
	w.hits++
	cas, ok := kv.As[kv.CompareAndPut](w.Store)
	if !ok {
		return kv.NoVersion, kv.ErrNotFound
	}
	return cas.PutIfVersion(ctx, key, value, since)
}

func TestAsFindsBaseCapability(t *testing.T) {
	mem := kv.NewMem("m")
	s := kv.Store(transparent{transparent{mem}})
	cas, ok := kv.As[kv.CompareAndPut](s)
	if !ok {
		t.Fatal("CompareAndPut not discovered through two transparent layers")
	}
	v, err := cas.PutIfVersion(context.Background(), "k", []byte("v"), kv.NoVersion)
	if err != nil || v == kv.NoVersion {
		t.Fatalf("PutIfVersion through walk = %q, %v", v, err)
	}
	if _, ok := kv.As[kv.Versioned](s); ok {
		t.Fatal("kv.Mem does not implement Versioned, yet As found it")
	}
}

func TestAsStopsAtOpaqueWrapper(t *testing.T) {
	s := kv.Store(opaque{kv.NewMem("m")})
	if _, ok := kv.As[kv.CompareAndPut](s); ok {
		t.Fatal("As walked through a wrapper with no Unwrap")
	}
}

func TestAsStopsAtNilUnwrap(t *testing.T) {
	s := kv.Store(sealing{kv.NewMem("m")})
	if _, ok := kv.As[kv.CompareAndPut](s); ok {
		t.Fatal("As walked past an Unwrap that returned nil")
	}
}

func TestAsRespectsInterceptor(t *testing.T) {
	mem := kv.NewMem("m")
	g := &gatedCAS{Store: mem, armed: false}

	// Disarmed: the walk must skip the wrapper's static method and find the
	// base store's CAS directly.
	cas, ok := kv.As[kv.CompareAndPut](kv.Store(g))
	if !ok {
		t.Fatal("CAS not found through disarmed interceptor")
	}
	if _, err := cas.PutIfVersion(context.Background(), "k", []byte("v"), kv.NoVersion); err != nil {
		t.Fatal(err)
	}
	if g.hits != 0 {
		t.Fatalf("disarmed wrapper intercepted %d CAS calls, want 0", g.hits)
	}

	// Armed: the wrapper wins.
	g.armed = true
	cas, ok = kv.As[kv.CompareAndPut](kv.Store(g))
	if !ok {
		t.Fatal("CAS not found through armed interceptor")
	}
	if _, err := cas.PutIfVersion(context.Background(), "k", []byte("v2"), kv.NoVersion); err == nil {
		// Second blind create must fail with a mismatch; either way the
		// wrapper must have seen the call.
		t.Fatal("blind CAS create over existing key succeeded")
	}
	if g.hits != 1 {
		t.Fatalf("armed wrapper intercepted %d CAS calls, want 1", g.hits)
	}
}

func TestAsIdentity(t *testing.T) {
	mem := kv.NewMem("m")
	s, ok := kv.As[kv.Store](kv.Store(transparent{mem}))
	if !ok {
		t.Fatal("As[kv.Store] failed")
	}
	if _, isWrap := s.(transparent); !isWrap {
		t.Fatalf("As[kv.Store] = %T, want the outermost store", s)
	}
}

func TestAsNilStore(t *testing.T) {
	if _, ok := kv.As[kv.Batch](nil); ok {
		t.Fatal("As(nil) reported a capability")
	}
}

func TestAsCyclicChainTerminates(t *testing.T) {
	// A self-wrapping store must not hang the walk.
	c := &cyclic{}
	c.next = c
	if _, ok := kv.As[kv.Batch](c); ok {
		t.Fatal("cyclic chain reported a capability")
	}
}

type cyclic struct {
	kv.Store
	next kv.Store
}

func (c *cyclic) Unwrap() kv.Store { return c.next }

func TestStackOrder(t *testing.T) {
	var order []string
	tag := func(name string) kv.Layer {
		return func(s kv.Store) kv.Store {
			order = append(order, name)
			return transparent{s}
		}
	}
	base := kv.NewMem("m")
	s := kv.Stack(base, tag("inner"), nil, tag("outer"))
	if len(order) != 2 || order[0] != "inner" || order[1] != "outer" {
		t.Fatalf("layer application order = %v, want [inner outer]", order)
	}
	// The stacked store still works and still reaches the base.
	if err := s.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := base.Get(context.Background(), "k"); err != nil || string(v) != "v" {
		t.Fatalf("write did not reach the base store: %q, %v", v, err)
	}
	if _, ok := kv.As[kv.CompareAndPut](s); !ok {
		t.Fatal("base capability lost through Stack")
	}
}

func TestStackNoLayers(t *testing.T) {
	base := kv.NewMem("m")
	if s := kv.Stack(base); s != kv.Store(base) {
		t.Fatalf("Stack with no layers = %T, want the base store", s)
	}
}
