package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"edsc/kv"
	"edsc/kv/cluster"
	"edsc/kv/faulty"
	"edsc/kv/kvtest"
)

// TestClusterChaos is the node-kill chaos suite: a background killer takes
// whole backend nodes down and up while the chaos workload runs, and every
// observation is checked against the delayed-visibility possibility model.
// One node is dead at a time, so a 3-replica R=W=2 cluster always keeps
// quorum: the store must ride through every kill (hinted handoff catches
// the missed writes, read repair converges recovered replicas), and any
// model violation is a real consistency bug.
//
// Runs against 3-node and 5-node clusters; on the 5-node ring each key
// still has 3 replicas, so kills hit a shifting subset of the key space.
func TestClusterChaos(t *testing.T) {
	for _, nNodes := range []int{3, 5} {
		t.Run(fmt.Sprintf("%dNodes", nNodes), func(t *testing.T) {
			killer := &kvtest.NodeKiller{}
			var c *cluster.Cluster
			factory := func(t *testing.T) (kv.Store, func()) {
				killer.Nodes = nil
				nodes := make([]cluster.Node, nNodes)
				for i := range nodes {
					id := fmt.Sprintf("node%d", i)
					sw := faulty.New(kv.NewMem(id), faulty.Options{})
					killer.Nodes = append(killer.Nodes, sw)
					nodes[i] = cluster.Node{ID: id, Store: sw}
				}
				var err error
				c, err = cluster.New("chaos-cluster", nodes, cluster.Options{
					Replication: 3,
					ReadQuorum:  2,
					WriteQuorum: 2,
					// Kills fail fast (no timeouts involved), so the only
					// job of the node timeout is to be far above any real
					// in-memory operation.
					NodeTimeout: 500 * time.Millisecond,
				})
				if err != nil {
					t.Fatalf("cluster.New: %v", err)
				}
				return c, func() {}
			}

			kvtest.RunChaos(t, factory, kvtest.ChaosOptions{
				Seed:         int64(100 + nNodes),
				OpsPerWorker: 300,
				NodeKiller:   killer,
				// Quorum failures during a kill window are chaos, not bugs.
				AmbiguousErrs: []error{cluster.ErrNoQuorum},
				PostCheck: func(t *testing.T, s kv.Store) {
					// With every node restored, hinted handoff must drain
					// completely...
					remaining, err := c.FlushHints(context.Background())
					if err != nil {
						t.Fatalf("FlushHints after chaos: %v", err)
					}
					if remaining != 0 {
						t.Fatalf("%d hints still pending with every node up", remaining)
					}
					// ...and the suite must actually have exercised the
					// degraded paths it exists to test.
					st := c.Stats()
					if st.DegradedWrites == 0 && st.HintsQueued == 0 && st.ReadRepairs == 0 {
						t.Fatalf("chaos run never degraded a write, queued a hint, or repaired a replica: %+v (kills=%d)",
							st, killer.Kills())
					}
				},
			})
		})
	}
}
