package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"edsc/kv"
)

// Membership changes: Join adds a node and pulls its share of the key space
// onto it; Leave drains a node's keys to their new owners and removes it.
// Both run a live rebalance — reads and writes keep flowing while keys move,
// which the conformance suite's membership-under-load test exercises.
//
// Rebalancing is per key, under the key's stripe lock, using the same
// winner-by-version resolution as read repair: for each known key, read the
// copies on the old and new replica sets, install the winner everywhere it
// now belongs, and delete it from nodes that no longer replicate it. A
// concurrent write that lands mid-rebalance either happens before the key's
// turn (the new replica set is already in the ring, so the write goes to the
// right nodes) or after it (the stripe lock ordered it behind the move);
// either way no version is lost.

const rebalanceFanout = 8

// Join adds node to the ring and rebalances. Joining an existing ID is an
// error; the new node starts serving its share of reads only after its keys
// have been copied.
func (c *Cluster) Join(ctx context.Context, node Node) error {
	if node.ID == "" || node.Store == nil {
		return errors.New("cluster: node needs a non-empty ID and a store")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return kv.ErrClosed
	}
	if _, dup := c.members[node.ID]; dup {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %q already a member", node.ID)
	}
	c.members[node.ID] = node.Store
	c.ring.Add(node.ID)
	c.mu.Unlock()

	return c.rebalance(ctx, nil)
}

// Leave drains node's keys to their new owners and removes it from the
// cluster. The departing store is left open (the caller owns it again) but
// is kept available as a read source during the drain. Removing the last
// node, or dropping below the replication factor, is an error.
func (c *Cluster) Leave(ctx context.Context, nodeID string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return kv.ErrClosed
	}
	departing, member := c.members[nodeID]
	if !member {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %q is not a member", nodeID)
	}
	if len(c.members)-1 < c.opts.Replication {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot drop below replication factor %d", c.opts.Replication)
	}
	// Remove from ring and membership first: new writes route around the
	// departing node immediately, then the drain copies what it held.
	delete(c.members, nodeID)
	c.ring.Remove(nodeID)
	delete(c.hints, nodeID)
	c.mu.Unlock()

	return c.rebalance(ctx, &replica{id: nodeID, store: departing})
}

// rebalance re-homes every key onto its current replica set. extra, when
// non-nil, is a departed node still consulted as a read source (and cleaned
// of records that now live elsewhere).
func (c *Cluster) rebalance(ctx context.Context, extra *replica) error {
	reps, err := c.allMembers()
	if err != nil {
		return err
	}
	sources := reps
	if extra != nil {
		sources = append(append([]replica(nil), reps...), *extra)
	}

	// Union of keys across all sources. A source that cannot list is
	// skipped — its records either also live on reachable replicas or will
	// be recovered by read repair / hints once it returns.
	keySet := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, src := range sources {
		wg.Add(1)
		go func(src replica) {
			defer wg.Done()
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			keys, err := src.store.Keys(nctx)
			if err != nil {
				return
			}
			mu.Lock()
			for _, k := range keys {
				keySet[k] = true
			}
			mu.Unlock()
		}(src)
	}
	wg.Wait()

	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}

	sem := make(chan struct{}, rebalanceFanout)
	var moved atomic.Int64
	var firstErr atomicErr
	for _, key := range keys {
		if err := ctx.Err(); err != nil {
			return err
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(key string) {
			defer wg.Done()
			defer func() { <-sem }()
			n, err := c.rebalanceKey(ctx, key, sources, extra)
			moved.Add(int64(n))
			firstErr.set(err)
		}(key)
	}
	wg.Wait()

	c.rebalances.Add(1)
	c.keysMoved.Add(moved.Load())
	return firstErr.err()
}

// rebalanceKey moves one key onto its current replica set: winner by
// version across all sources, installed where it now belongs, deleted from
// sources that no longer replicate it.
func (c *Cluster) rebalanceKey(ctx context.Context, key string, sources []replica, extra *replica) (moved int, err error) {
	lock := c.lockFor(key)
	lock.Lock()
	defer lock.Unlock()

	reps, err := c.replicasFor(key)
	if err != nil {
		return 0, err
	}
	owner := make(map[string]bool, len(reps))
	for _, rep := range reps {
		owner[rep.id] = true
	}

	// Read every copy (owners and former holders alike).
	resp := c.fanoutRead(ctx, sources, key)
	winner := record{}
	exists := false
	for _, r := range resp {
		if r.err == nil && r.exists && (!exists || r.rec.Version > winner.Version) {
			winner, exists = r.rec, true
		}
	}
	if !exists {
		return 0, nil // raced with a concurrent rebalance or never existed
	}
	c.observeVersion(winner.Version)

	var firstErr error
	for _, r := range resp {
		switch {
		case owner[r.rep.id]:
			if r.err == nil && r.exists && r.rec.Version >= winner.Version {
				continue // already current
			}
			if err := c.installIfNewer(ctx, r.rep.store, key, winner); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("cluster: rebalance %q onto %s: %w", key, r.rep.id, err)
				}
				continue
			}
			moved++
		case r.err == nil && r.exists:
			// Former holder: drop the record only if it was copied out
			// successfully (firstErr == nil keeps it as a recovery source).
			if firstErr == nil {
				nctx, cancel := c.nodeCtx(ctx)
				derr := r.rep.store.Delete(nctx, key)
				cancel()
				if derr != nil && !kv.IsNotFound(derr) && firstErr == nil {
					firstErr = fmt.Errorf("cluster: rebalance pruning %q from %s: %w", key, r.rep.id, derr)
				}
			}
		}
	}
	if extra != nil && firstErr == nil {
		// The departing node keeps nothing once its keys are re-homed.
		nctx, cancel := c.nodeCtx(ctx)
		_ = extra.store.Delete(nctx, key)
		cancel()
	}
	return moved, firstErr
}

// atomicErr keeps the first error seen across goroutines.
type atomicErr struct {
	mu sync.Mutex
	e  error
}

func (a *atomicErr) set(err error) {
	if err == nil {
		return
	}
	a.mu.Lock()
	if a.e == nil {
		a.e = err
	}
	a.mu.Unlock()
}

func (a *atomicErr) err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.e
}
