package cluster

import (
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Each member node owns
// Vnodes points on a 64-bit hash circle; a key belongs to the first point at
// or clockwise after its hash, and a key's replica set is the first N
// *distinct* nodes found walking clockwise from there (the Dynamo-style
// preference list). Virtual nodes smooth the load: with v points per node
// the expected imbalance shrinks like 1/sqrt(v).
//
// Placement is a pure function of (member IDs, Vnodes, Seed): two rings
// built with the same parameters place every key identically, regardless of
// join order. Membership changes move only the keys whose arc changed —
// about 1/n of the key space when the n-th node joins or leaves — which the
// ring property tests pin down.
//
// Ring is not safe for concurrent mutation; Cluster guards it with its
// membership lock. Lookups on an unchanging ring are safe to share.
type Ring struct {
	vnodes int
	seed   uint64
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring. vnodes <= 0 defaults to 64. The seed
// perturbs every point position, so independent clusters over the same node
// names can use uncorrelated placements while any fixed seed stays fully
// deterministic.
func NewRing(vnodes int, seed int64) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, seed: uint64(seed), nodes: make(map[string]bool)}
}

// fnv64a is the FNV-1a hash of s, the repository's standard cheap
// dependency-free hash (dscl's singleflight shards the same way).
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer. FNV-1a alone clusters short sequential
// inputs ("node1#0", "node1#1", ...); the finalizer's avalanche spreads the
// vnode points evenly enough to hit the ±15% balance budget at 64 vnodes.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (r *Ring) pointHash(node string, i int) uint64 {
	return mix64(fnv64a(node) ^ r.seed ^ mix64(uint64(i)+0x9e3779b97f4a7c15))
}

func keyHash(key string) uint64 { return mix64(fnv64a(key)) }

// Add inserts node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: r.pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node // total order even on hash ties
	})
}

// Remove deletes node's virtual points. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the member node IDs in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Contains reports whether node is a member.
func (r *Ring) Contains(node string) bool { return r.nodes[node] }

// Lookup returns the node owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	nodes := r.LookupN(key, 1)
	if len(nodes) == 0 {
		return ""
	}
	return nodes[0]
}

// LookupN returns key's replica set: the first n distinct nodes clockwise
// from the key's hash. Fewer than n members returns all of them, in
// preference order.
func (r *Ring) LookupN(key string, n int) []string {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
