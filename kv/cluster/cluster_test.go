package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"edsc/internal/miniredis"
	"edsc/kv"
	"edsc/kv/cluster"
	"edsc/kv/kvtest"
)

// memCluster builds a 3-node mem-backed cluster with majority quorums.
func memCluster(t *testing.T) (kv.Store, func()) {
	t.Helper()
	nodes := make([]cluster.Node, 3)
	for i := range nodes {
		id := fmt.Sprintf("node%d", i)
		nodes[i] = cluster.Node{ID: id, Store: kv.NewMem(id)}
	}
	c, err := cluster.New("cluster", nodes, cluster.Options{})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return c, func() {}
}

// TestClusterConformance runs the full single-store conformance suite plus
// every capability suite the cluster claims: the distributed tier must be
// indistinguishable from a local store under the standard contract.
func TestClusterConformance(t *testing.T) {
	kvtest.Run(t, memCluster, kvtest.Options{
		// 1 MiB values through 3-way replication are slow in -race runs;
		// 256 KiB still exercises the large-value path.
		MaxValue: 256 << 10,
	})
	kvtest.RunBatch(t, memCluster)
	kvtest.RunVersioned(t, memCluster)
	kvtest.RunCompareAndPut(t, memCluster)
}

// TestClusterSuite runs the cluster-specific conformance: quorum failures,
// hinted handoff, read repair, membership change under load.
func TestClusterSuite(t *testing.T) {
	kvtest.RunCluster(t, kvtest.MemNodeFactory)
}

// TestClusterSuiteMiniredisNodes re-runs the cluster conformance with real
// miniredis servers as nodes — every replica access crosses a loopback TCP
// connection and the RESP protocol, so node-level encoding and error paths
// are exercised for real.
func TestClusterSuiteMiniredisNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("miniredis-backed cluster suite skipped in -short")
	}
	kvtest.RunCluster(t, func(t *testing.T, id string) (kv.Store, func()) {
		srv := miniredis.NewServer(miniredis.ServerConfig{Addr: "127.0.0.1:0"})
		if err := srv.Start(); err != nil {
			t.Fatalf("starting miniredis node %s: %v", id, err)
		}
		store := miniredis.OpenStore(id, srv.Addr(), "")
		return store, func() {
			store.Close()
			srv.Close()
		}
	})
}

// TestClusterNew pins the constructor's validation: bad quorum geometry and
// bad node specs must fail loudly, not misbehave quietly later.
func TestClusterNew(t *testing.T) {
	mem := func(id string) cluster.Node { return cluster.Node{ID: id, Store: kv.NewMem(id)} }
	cases := []struct {
		name  string
		nodes []cluster.Node
		opts  cluster.Options
	}{
		{"NoNodes", nil, cluster.Options{}},
		{"EmptyID", []cluster.Node{{ID: "", Store: kv.NewMem("x")}}, cluster.Options{}},
		{"NilStore", []cluster.Node{{ID: "a"}}, cluster.Options{}},
		{"DuplicateID", []cluster.Node{mem("a"), mem("a")}, cluster.Options{}},
		{"QuorumsTooWeak", []cluster.Node{mem("a"), mem("b"), mem("c")},
			cluster.Options{Replication: 3, ReadQuorum: 1, WriteQuorum: 1}}, // R+W <= N
		{"QuorumTooLarge", []cluster.Node{mem("a"), mem("b")},
			cluster.Options{Replication: 2, ReadQuorum: 3, WriteQuorum: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := cluster.New("c", tc.nodes, tc.opts); err == nil {
				t.Fatal("cluster.New accepted an invalid configuration")
			}
		})
	}

	// And the happy path defaults to majority quorums.
	c, err := cluster.New("c", []cluster.Node{mem("a"), mem("b"), mem("c")}, cluster.Options{})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, err := c.Get(ctx, "k"); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

// TestClusterTombstoneNoResurrection: the reason deletes replicate as
// tombstones. A replica that missed a delete must not resurrect the key —
// even when it is the only replica that still holds the old value and the
// reader's quorum includes it.
func TestClusterTombstoneNoResurrection(t *testing.T) {
	ctx := context.Background()
	s, cleanup := memCluster(t)
	defer cleanup()
	defer s.Close()

	if err := s.Put(ctx, "ghost", []byte("alive")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Delete(ctx, "ghost"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// Every quorum read after the delete must agree the key is gone.
	for i := 0; i < 10; i++ {
		if _, err := s.Get(ctx, "ghost"); !kv.IsNotFound(err) {
			t.Fatalf("read %d after delete: %v, want ErrNotFound", i, err)
		}
		if ok, err := s.Contains(ctx, "ghost"); err != nil || ok {
			t.Fatalf("Contains after delete = %v, %v", ok, err)
		}
	}
	// Tombstoned keys are invisible to listing too.
	keys, err := s.Keys(ctx)
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	for _, k := range keys {
		if k == "ghost" {
			t.Fatal("tombstoned key leaked into Keys")
		}
	}
}

// TestClusterErrAmbiguousSentinel pins the error-contract bridge: a write
// quorum failure must be recognizable both as a cluster quorum problem and
// as an ambiguous write, through errors.Is alone.
func TestClusterErrAmbiguousSentinel(t *testing.T) {
	if !errors.Is(fmt.Errorf("wrapped: %w", cluster.ErrNoQuorum), cluster.ErrNoQuorum) {
		t.Fatal("ErrNoQuorum does not survive wrapping")
	}
	if !errors.Is(miniredis.ErrAmbiguousExchange, kv.ErrAmbiguous) {
		t.Fatal("miniredis.ErrAmbiguousExchange must wrap kv.ErrAmbiguous (the PR 3 rule, generalized)")
	}
}
