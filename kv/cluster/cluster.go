// Package cluster implements a distributed store tier over plain kv.Store
// backends: a kv.Store client that shards keys across N nodes with a
// consistent-hash ring (virtual nodes), replicates every key to a
// preference list of nodes with configurable N/R/W quorums, repairs
// divergent replicas on read, buffers hinted handoff for nodes that are
// down, and rebalances live when nodes join or leave.
//
// This is the "millions of users" step of the roadmap: the single-node
// substrates (in-memory, miniredis, cloudsim, minisql) stay untouched and
// become cluster nodes; everything the repository already provides — the
// batch interfaces, the kv.Stack middleware model, the chaos conformance
// suite — composes over the cluster unchanged. The design follows the
// partitioned-with-replication model of UStore and Redis/Valkey cluster
// mode (PAPERS.md), scaled down to a client-side coordinator: this package
// is the paper's "enhanced data store client" grown a cluster tier, not a
// server-side consensus system.
//
// # Replication and consistency
//
// Every value is stored on nodes as a record carrying a coordinator-issued
// monotonic version and a tombstone flag (deletes replicate as tombstones,
// so a stale replica cannot resurrect a deleted key). A write succeeds when
// at least W of the key's N replicas acknowledge; a read succeeds when at
// least R replicas answer, and returns the record with the highest version.
// With R+W > N (the default: N=3, R=W=2) read and write quorums intersect,
// so a successful read always observes the newest successful write.
//
// Reads additionally enforce *monotonic reads* before answering: the
// winning record must be present on at least N-R+1 replicas (every future
// R-quorum then intersects it), and the read path synchronously
// read-repairs stale replicas until that holds — otherwise the read fails
// as quorum-ambiguous rather than return a value that could later vanish.
// This is what lets the chaos suite check the cluster against a
// linearizability possibility model instead of hand-waving "eventual".
//
// Writes that cannot reach a replica leave a hint with the coordinator;
// hints drain back to the node once it is reachable again (opportunistically
// after any successful write that touches it, or explicitly via FlushHints).
//
// All writes to one key are serialized through a striped coordinator lock,
// which is what makes CompareAndPut sound: this package assumes a single
// coordinator process per cluster (the paper's client-side setting). Two
// Cluster clients over the same nodes would race versions.
package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edsc/kv"
)

// ErrNoQuorum reports an operation that could not reach its read or write
// quorum. It surfaces wrapped in a *kv.StoreError carrying the store name,
// op, and key; write-path quorum failures additionally wrap kv.ErrAmbiguous,
// because the replicas that did answer may have applied the write.
var ErrNoQuorum = errors.New("cluster: quorum unreachable")

// Node pairs a member ID with its backend store. The ID, not the store
// name, determines ring placement, so a node can be replaced by a new
// backend under the same ID without moving keys.
type Node struct {
	ID    string
	Store kv.Store
}

// Options tune the cluster. The zero value replicates to min(3, nodes)
// replicas with majority quorums and 64 virtual nodes.
type Options struct {
	// Replication is N, the number of replicas per key (default
	// min(3, member count), capped at the member count).
	Replication int
	// ReadQuorum is R, the replica answers a read needs (default N/2+1).
	ReadQuorum int
	// WriteQuorum is W, the replica acks a write needs (default N/2+1).
	WriteQuorum int
	// Vnodes is the virtual-node count per member (default 64).
	Vnodes int
	// Seed perturbs ring placement deterministically.
	Seed int64
	// MaxHints bounds the hinted-handoff buffer per node (default 4096);
	// beyond it the oldest hints are dropped and counted in Stats.
	MaxHints int
	// NodeTimeout bounds each per-replica operation (default 2s), so one
	// hung node cannot stall a quorum that is otherwise satisfied.
	NodeTimeout time.Duration
}

func (o Options) withDefaults(members int) Options {
	if o.Replication <= 0 {
		o.Replication = 3
	}
	if o.Replication > members {
		o.Replication = members
	}
	if o.ReadQuorum <= 0 {
		o.ReadQuorum = o.Replication/2 + 1
	}
	if o.WriteQuorum <= 0 {
		o.WriteQuorum = o.Replication/2 + 1
	}
	if o.Vnodes <= 0 {
		o.Vnodes = 64
	}
	if o.MaxHints <= 0 {
		o.MaxHints = 4096
	}
	if o.NodeTimeout <= 0 {
		o.NodeTimeout = 2 * time.Second
	}
	return o
}

// Stats are cumulative counters of cluster-level events.
type Stats struct {
	Reads          int64 // quorum reads served
	Writes         int64 // quorum writes acknowledged
	ReadRepairs    int64 // stale replicas repaired on the read path
	DegradedWrites int64 // successful writes that missed at least one replica
	HintsQueued    int64 // hinted-handoff records buffered
	HintsReplayed  int64 // hints drained back to recovered nodes
	HintsDropped   int64 // hints lost to the MaxHints bound
	QuorumFailures int64 // operations failed for lack of quorum
	Rebalances     int64 // join/leave rebalance passes completed
	KeysMoved      int64 // records copied during rebalancing
}

// Cluster is the sharded, replicated store client. It implements kv.Store,
// kv.Versioned, kv.CompareAndPut, kv.Batch, and kv.VersionedBatch; the
// expiry and SQL escape hatches do not exist cluster-wide (no single node
// owns a key), so kv.Expiring and kv.SQL are deliberately absent.
type Cluster struct {
	name string
	opts Options
	ver  atomic.Uint64 // cluster-wide version counter (single coordinator)

	mu      sync.RWMutex // guards ring, members, hints, closed
	ring    *Ring
	members map[string]kv.Store
	hints   map[string][]hint // node ID -> pending handoff records
	closed  bool

	locks [keyStripes]sync.Mutex // serialize writes per key stripe

	reads, writes, repairs, degraded atomic.Int64
	hintsQ, hintsR, hintsD, noQuorum atomic.Int64
	rebalances, keysMoved            atomic.Int64
}

const keyStripes = 64

type hint struct {
	key string
	rec record
}

var (
	_ kv.Store          = (*Cluster)(nil)
	_ kv.Versioned      = (*Cluster)(nil)
	_ kv.CompareAndPut  = (*Cluster)(nil)
	_ kv.Batch          = (*Cluster)(nil)
	_ kv.VersionedBatch = (*Cluster)(nil)
)

// New builds a cluster client over nodes. Node IDs must be unique and
// non-empty; at least one node is required, and the quorum parameters must
// satisfy R <= N, W <= N, and R+W > N (quorum intersection — the basis of
// every consistency claim this package makes).
func New(name string, nodes []Node, opts Options) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: at least one node required")
	}
	opts = opts.withDefaults(len(nodes))
	n, r, w := opts.Replication, opts.ReadQuorum, opts.WriteQuorum
	if r > n || w > n || r+w <= n {
		return nil, fmt.Errorf("cluster: invalid quorum N=%d R=%d W=%d (need R<=N, W<=N, R+W>N)", n, r, w)
	}
	c := &Cluster{
		name:    name,
		opts:    opts,
		ring:    NewRing(opts.Vnodes, opts.Seed),
		members: make(map[string]kv.Store, len(nodes)),
		hints:   make(map[string][]hint),
	}
	for _, nd := range nodes {
		if nd.ID == "" || nd.Store == nil {
			return nil, errors.New("cluster: node needs a non-empty ID and a store")
		}
		if _, dup := c.members[nd.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", nd.ID)
		}
		c.members[nd.ID] = nd.Store
		c.ring.Add(nd.ID)
	}
	return c, nil
}

// Stats returns a snapshot of the cluster counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Reads:          c.reads.Load(),
		Writes:         c.writes.Load(),
		ReadRepairs:    c.repairs.Load(),
		DegradedWrites: c.degraded.Load(),
		HintsQueued:    c.hintsQ.Load(),
		HintsReplayed:  c.hintsR.Load(),
		HintsDropped:   c.hintsD.Load(),
		QuorumFailures: c.noQuorum.Load(),
		Rebalances:     c.rebalances.Load(),
		KeysMoved:      c.keysMoved.Load(),
	}
}

// Name implements kv.Store.
func (c *Cluster) Name() string { return c.name }

// Options returns the effective configuration — the constructor's input
// with every default resolved (replication factor, quorum sizes, ring
// geometry).
func (c *Cluster) Options() Options { return c.opts }

// --- record encoding -------------------------------------------------------

// Record is the decoded form of what the cluster stores on its nodes: the
// application value plus the replication metadata read repair and hinted
// handoff need. It is exported so tests and tools can inspect node state
// directly (the conformance suite asserts per-node convergence with it).
type Record struct {
	Version   uint64
	Tombstone bool
	Value     []byte
}

type record = Record

const (
	recMagic0  = 0xC7 // arbitrary non-text bytes: a decode failure on raw
	recMagic1  = 0x01 // application data should be loud, not silent
	recHdrSize = 2 + 8 + 1
	flagTomb   = 0x01
)

// Encode renders the record in the node storage format.
func (r Record) Encode() []byte {
	out := make([]byte, recHdrSize+len(r.Value))
	out[0], out[1] = recMagic0, recMagic1
	binary.BigEndian.PutUint64(out[2:], r.Version)
	if r.Tombstone {
		out[10] = flagTomb
	}
	copy(out[recHdrSize:], r.Value)
	return out
}

// DecodeRecord parses a node-stored blob back into a Record. The Value
// aliases b's tail; callers that outlive b must copy.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < recHdrSize || b[0] != recMagic0 || b[1] != recMagic1 {
		return Record{}, errors.New("cluster: not a cluster record")
	}
	return Record{
		Version:   binary.BigEndian.Uint64(b[2:]),
		Tombstone: b[10]&flagTomb != 0,
		Value:     b[recHdrSize:],
	}, nil
}

func (c *Cluster) nextVersion() uint64 { return c.ver.Add(1) }

// observeVersion raises the counter to at least v, so a coordinator built
// over pre-existing node data cannot issue versions that lose to it.
func (c *Cluster) observeVersion(v uint64) {
	for {
		cur := c.ver.Load()
		if v <= cur || c.ver.CompareAndSwap(cur, v) {
			return
		}
	}
}

func versionString(v uint64) kv.Version { return kv.Version(fmt.Sprintf("c%d", v)) }

// --- membership snapshots and errors ---------------------------------------

type replica struct {
	id    string
	store kv.Store
}

// replicasFor snapshots key's preference list under the membership lock.
func (c *Cluster) replicasFor(key string) ([]replica, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, kv.ErrClosed
	}
	ids := c.ring.LookupN(key, c.opts.Replication)
	out := make([]replica, 0, len(ids))
	for _, id := range ids {
		out = append(out, replica{id: id, store: c.members[id]})
	}
	return out, nil
}

// allMembers snapshots the full membership under the lock.
func (c *Cluster) allMembers() ([]replica, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, kv.ErrClosed
	}
	out := make([]replica, 0, len(c.members))
	for _, id := range c.ring.Nodes() {
		out = append(out, replica{id: id, store: c.members[id]})
	}
	return out, nil
}

// quorumError builds the typed quorum failure: a *kv.StoreError whose cause
// chain carries ErrNoQuorum, the per-node causes (so tests can see injected
// faults through it), and — for writes, which may have partially applied —
// kv.ErrAmbiguous, the marker the resilience layer's idempotency gate keys
// on.
func (c *Cluster) quorumError(op, key string, ambiguous bool, causes []error) error {
	c.noQuorum.Add(1)
	parts := []error{ErrNoQuorum}
	if ambiguous {
		parts = append(parts, kv.ErrAmbiguous)
	}
	// Cap the cause chain; one representative failure per node is plenty.
	if len(causes) > 4 {
		causes = causes[:4]
	}
	parts = append(parts, causes...)
	return &kv.StoreError{Store: c.name, Op: op, Key: key, Err: errors.Join(parts...)}
}

func (c *Cluster) lockFor(key string) *sync.Mutex {
	return &c.locks[mix64(fnv64a(key))%keyStripes]
}

// stripesFor returns the sorted, deduplicated stripe indexes of keys —
// multi-key writes lock ascending so overlapping batches cannot deadlock.
func (c *Cluster) stripesFor(keys []string) []int {
	seen := make(map[int]bool, len(keys))
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		i := int(mix64(fnv64a(k)) % keyStripes)
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

func (c *Cluster) lockStripes(idx []int) {
	for _, i := range idx {
		c.locks[i].Lock()
	}
}

func (c *Cluster) unlockStripes(idx []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		c.locks[idx[i]].Unlock()
	}
}

// nodeCtx bounds one per-replica operation.
func (c *Cluster) nodeCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, c.opts.NodeTimeout)
}

// --- quorum write ----------------------------------------------------------

// writeRecordLocked replicates rec to key's preference list and waits for
// every replica to answer or time out (no fire-and-forget stragglers: a
// write that outlived its key lock could clobber a newer record). Failed
// replicas get hints. Caller holds key's stripe lock. It returns the nodes
// that acked, so opportunistic hint draining can run after the lock drops.
func (c *Cluster) writeRecordLocked(ctx context.Context, op, key string, rec record) ([]replica, error) {
	reps, err := c.replicasFor(key)
	if err != nil {
		return nil, err
	}
	type result struct {
		rep replica
		err error
	}
	results := make([]result, len(reps))
	enc := rec.Encode()
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep replica) {
			defer wg.Done()
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			results[i] = result{rep: rep, err: rep.store.Put(nctx, key, enc)}
		}(i, rep)
	}
	wg.Wait()

	var acked []replica
	var causes []error
	for _, r := range results {
		if r.err == nil {
			acked = append(acked, r.rep)
		} else {
			causes = append(causes, fmt.Errorf("node %s: %w", r.rep.id, r.err))
			c.addHint(r.rep.id, key, rec)
		}
	}
	if len(acked) < c.opts.WriteQuorum {
		// The acks that did land may have applied the write: ambiguous.
		return acked, c.quorumError(op, key, true, causes)
	}
	if len(acked) < len(reps) {
		c.degraded.Add(1)
	}
	c.writes.Add(1)
	return acked, nil
}

// addHint buffers a handoff record for an unreachable node.
func (c *Cluster) addHint(nodeID, key string, rec record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, member := c.members[nodeID]; !member {
		return
	}
	h := c.hints[nodeID]
	if len(h) >= c.opts.MaxHints {
		h = h[1:]
		c.hintsD.Add(1)
	}
	c.hints[nodeID] = append(h, hint{key: key, rec: rec})
	c.hintsQ.Add(1)
}

// takeHints removes and returns the pending hints for the given nodes.
func (c *Cluster) takeHints(nodes []string) map[string][]hint {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]hint)
	for _, id := range nodes {
		if h := c.hints[id]; len(h) > 0 {
			out[id] = h
			delete(c.hints, id)
		}
	}
	return out
}

// drainHints replays pending hints to the given nodes (which just proved
// reachable). Each record installs under its key lock and only if the node
// does not already hold something newer; hints that fail again are re-queued.
// Callers must NOT hold any key stripe lock.
func (c *Cluster) drainHints(ctx context.Context, nodes []replica) {
	ids := make([]string, len(nodes))
	byID := make(map[string]kv.Store, len(nodes))
	for i, n := range nodes {
		ids[i] = n.id
		byID[n.id] = n.store
	}
	pending := c.takeHints(ids)
	for id, hs := range pending {
		store := byID[id]
		for _, h := range hs {
			lock := c.lockFor(h.key)
			lock.Lock()
			err := c.installIfNewer(ctx, store, h.key, h.rec)
			lock.Unlock()
			if err != nil {
				c.addHint(id, h.key, h.rec)
			} else {
				c.hintsR.Add(1)
			}
		}
	}
}

// FlushHints synchronously replays every buffered handoff record whose
// target node is reachable. It returns the number of hints still pending
// (nodes still down re-queue their records).
func (c *Cluster) FlushHints(ctx context.Context) (remaining int, err error) {
	reps, err := c.allMembers()
	if err != nil {
		return 0, err
	}
	c.drainHints(ctx, reps)
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, h := range c.hints {
		remaining += len(h)
	}
	return remaining, nil
}

// PendingHints reports the number of buffered handoff records.
func (c *Cluster) PendingHints() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, h := range c.hints {
		n += len(h)
	}
	return n
}

// installIfNewer writes rec to one node unless the node already holds an
// equal-or-newer record. Caller holds key's stripe lock (which is what makes
// the read-then-write below race-free: no newer version can be committed
// while we hold it).
func (c *Cluster) installIfNewer(ctx context.Context, store kv.Store, key string, rec record) error {
	nctx, cancel := c.nodeCtx(ctx)
	defer cancel()
	cur, err := store.Get(nctx, key)
	switch {
	case err == nil:
		if existing, derr := DecodeRecord(cur); derr == nil && existing.Version >= rec.Version {
			return nil
		}
	case kv.IsNotFound(err):
		// Nothing there; install.
	default:
		return err
	}
	return store.Put(nctx, key, rec.Encode())
}

// --- quorum read -----------------------------------------------------------

// readResponse is one replica's answer to a read.
type readResponse struct {
	rep    replica
	rec    record
	exists bool // node had a record (tombstones exist too)
	err    error
}

// fanoutRead asks every replica for key and waits for all of them (each
// bounded by NodeTimeout).
func (c *Cluster) fanoutRead(ctx context.Context, reps []replica, key string) []readResponse {
	out := make([]readResponse, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep replica) {
			defer wg.Done()
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			b, err := rep.store.Get(nctx, key)
			switch {
			case err == nil:
				rec, derr := DecodeRecord(b)
				if derr != nil {
					out[i] = readResponse{rep: rep, err: fmt.Errorf("node %s key %q: %w", rep.id, key, derr)}
					return
				}
				// Detach from the node's buffer before it can be reused.
				rec.Value = append([]byte(nil), rec.Value...)
				out[i] = readResponse{rep: rep, rec: rec, exists: true}
			case kv.IsNotFound(err):
				out[i] = readResponse{rep: rep}
			default:
				out[i] = readResponse{rep: rep, err: fmt.Errorf("node %s: %w", rep.id, err)}
			}
		}(i, rep)
	}
	wg.Wait()
	return out
}

// resolveRead picks the winner among replica responses and enforces the
// monotonic-read rule, repairing stale replicas as needed. locked reports
// whether the caller already holds key's stripe lock (the CAS path does;
// plain reads do not, and repair takes it itself).
//
// Returns (winner, exists=false) when no replica has a record: the key was
// never written (or fully forgotten), distinct from a tombstoned key, where
// exists=true and winner.Tombstone is set.
func (c *Cluster) resolveRead(ctx context.Context, op, key string, reps []replica, resp []readResponse, locked bool) (record, bool, error) {
	var causes []error
	answered := 0
	winner := record{}
	exists := false
	for _, r := range resp {
		if r.err != nil {
			causes = append(causes, r.err)
			continue
		}
		answered++
		if r.exists && (!exists || r.rec.Version > winner.Version) {
			winner, exists = r.rec, true
		}
	}
	if answered < c.opts.ReadQuorum {
		return record{}, false, c.quorumError(op, key, false, causes)
	}
	if !exists {
		c.reads.Add(1)
		return record{}, false, nil
	}
	c.observeVersion(winner.Version)

	// Monotonic-read durability: the winner must be on enough replicas that
	// any future read quorum intersects one. Count current holders, then
	// repair stale responders (under the key lock) until the bound holds.
	need := len(reps) - c.opts.ReadQuorum + 1
	holders := 0
	for _, r := range resp {
		if r.err == nil && r.exists && r.rec.Version == winner.Version {
			holders++
		}
	}
	if holders < need {
		repaired, err := c.repair(ctx, key, winner, resp, need-holders, locked)
		holders += repaired
		if holders < need {
			if err == nil {
				err = errors.New("cluster: winner not durable on enough replicas")
			}
			return record{}, false, c.quorumError(op, key, true, append(causes, err))
		}
	} else if c.anyStale(resp, winner) {
		// Durability already holds; repair the rest opportunistically.
		_, _ = c.repair(ctx, key, winner, resp, len(reps), locked)
	}
	c.reads.Add(1)
	return winner, true, nil
}

func (c *Cluster) anyStale(resp []readResponse, winner record) bool {
	for _, r := range resp {
		if r.err == nil && (!r.exists || r.rec.Version < winner.Version) {
			return true
		}
	}
	return false
}

// repair installs winner on responders that lack it, stopping once have
// replicas have been fixed (pass len(reps) to repair everything reachable).
// It reports how many replicas now newly hold the winner.
func (c *Cluster) repair(ctx context.Context, key string, winner record, resp []readResponse, have int, locked bool) (int, error) {
	if !locked {
		lock := c.lockFor(key)
		lock.Lock()
		defer lock.Unlock()
	}
	repaired := 0
	var firstErr error
	for _, r := range resp {
		if repaired >= have {
			break
		}
		if r.err != nil || (r.exists && r.rec.Version >= winner.Version) {
			continue
		}
		if err := c.installIfNewer(ctx, r.rep.store, key, winner); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		repaired++
		c.repairs.Add(1)
	}
	return repaired, firstErr
}

// readRecord is the full unlocked quorum read.
func (c *Cluster) readRecord(ctx context.Context, op, key string) (record, bool, error) {
	reps, err := c.replicasFor(key)
	if err != nil {
		return record{}, false, err
	}
	resp := c.fanoutRead(ctx, reps, key)
	return c.resolveRead(ctx, op, key, reps, resp, false)
}

// readRecordLocked is readRecord for callers already holding key's stripe
// lock (the CAS and Delete paths).
func (c *Cluster) readRecordLocked(ctx context.Context, op, key string) (record, bool, error) {
	reps, err := c.replicasFor(key)
	if err != nil {
		return record{}, false, err
	}
	resp := c.fanoutRead(ctx, reps, key)
	return c.resolveRead(ctx, op, key, reps, resp, true)
}

// --- kv.Store --------------------------------------------------------------

// Get implements kv.Store.
func (c *Cluster) Get(ctx context.Context, key string) ([]byte, error) {
	v, _, err := c.GetVersioned(ctx, key)
	return v, err
}

// GetVersioned implements kv.Versioned.
func (c *Cluster) GetVersioned(ctx context.Context, key string) ([]byte, kv.Version, error) {
	if err := ctx.Err(); err != nil {
		return nil, kv.NoVersion, err
	}
	if err := kv.CheckKey(key); err != nil {
		return nil, kv.NoVersion, err
	}
	rec, exists, err := c.readRecord(ctx, "get", key)
	if err != nil {
		return nil, kv.NoVersion, err
	}
	if !exists || rec.Tombstone {
		return nil, kv.NoVersion, kv.ErrNotFound
	}
	return rec.Value, versionString(rec.Version), nil
}

// GetIfModified implements kv.Versioned.
func (c *Cluster) GetIfModified(ctx context.Context, key string, since kv.Version) ([]byte, kv.Version, bool, error) {
	v, ver, err := c.GetVersioned(ctx, key)
	if err != nil {
		return nil, kv.NoVersion, false, err
	}
	if since != kv.NoVersion && ver == since {
		return nil, since, false, nil
	}
	return v, ver, true, nil
}

// Put implements kv.Store.
func (c *Cluster) Put(ctx context.Context, key string, value []byte) error {
	_, err := c.PutVersioned(ctx, key, value)
	return err
}

// PutVersioned implements kv.Versioned.
func (c *Cluster) PutVersioned(ctx context.Context, key string, value []byte) (kv.Version, error) {
	if err := ctx.Err(); err != nil {
		return kv.NoVersion, err
	}
	if err := kv.CheckKey(key); err != nil {
		return kv.NoVersion, err
	}
	rec := record{Version: c.nextVersion(), Value: append([]byte(nil), value...)}
	lock := c.lockFor(key)
	lock.Lock()
	acked, err := c.writeRecordLocked(ctx, "put", key, rec)
	lock.Unlock()
	if err != nil {
		return kv.NoVersion, err
	}
	c.drainHints(ctx, acked)
	return versionString(rec.Version), nil
}

// PutIfVersion implements kv.CompareAndPut. The coordinator's key lock
// serializes it against every other write to the key, so the quorum
// read-check-write below is atomic from this client's point of view.
func (c *Cluster) PutIfVersion(ctx context.Context, key string, value []byte, since kv.Version) (kv.Version, error) {
	if err := ctx.Err(); err != nil {
		return kv.NoVersion, err
	}
	if err := kv.CheckKey(key); err != nil {
		return kv.NoVersion, err
	}
	lock := c.lockFor(key)
	lock.Lock()
	cur, exists, err := c.readRecordLocked(ctx, "cas", key)
	if err != nil {
		lock.Unlock()
		return kv.NoVersion, err
	}
	live := exists && !cur.Tombstone
	if since == kv.NoVersion {
		if live {
			lock.Unlock()
			return kv.NoVersion, kv.ErrVersionMismatch
		}
	} else if !live || versionString(cur.Version) != since {
		lock.Unlock()
		return kv.NoVersion, kv.ErrVersionMismatch
	}
	rec := record{Version: c.nextVersion(), Value: append([]byte(nil), value...)}
	acked, err := c.writeRecordLocked(ctx, "cas", key, rec)
	lock.Unlock()
	if err != nil {
		return kv.NoVersion, err
	}
	c.drainHints(ctx, acked)
	return versionString(rec.Version), nil
}

// Delete implements kv.Store. Deletes replicate as tombstones: removing the
// record outright would let a replica that missed the delete win a later
// read quorum and resurrect the key.
func (c *Cluster) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := kv.CheckKey(key); err != nil {
		return err
	}
	lock := c.lockFor(key)
	lock.Lock()
	cur, exists, err := c.readRecordLocked(ctx, "delete", key)
	if err != nil {
		lock.Unlock()
		return err
	}
	if !exists || cur.Tombstone {
		lock.Unlock()
		return kv.ErrNotFound
	}
	rec := record{Version: c.nextVersion(), Tombstone: true}
	acked, err := c.writeRecordLocked(ctx, "delete", key, rec)
	lock.Unlock()
	if err != nil {
		return err
	}
	c.drainHints(ctx, acked)
	return nil
}

// Contains implements kv.Store.
func (c *Cluster) Contains(ctx context.Context, key string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if err := kv.CheckKey(key); err != nil {
		return false, err
	}
	rec, exists, err := c.readRecord(ctx, "contains", key)
	if err != nil {
		return false, err
	}
	return exists && !rec.Tombstone, nil
}

// Keys implements kv.Store: the union of live (non-tombstoned) keys across
// the cluster. It tolerates up to W-1 unreachable nodes — a successful
// write guarantees W copies, so any fewer failures still leave every key
// with a listable replica; beyond that the listing could silently omit keys
// and fails loudly instead.
func (c *Cluster) Keys(ctx context.Context) ([]string, error) {
	live, err := c.liveKeys(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(live))
	for k := range live {
		out = append(out, k)
	}
	return out, nil
}

// Len implements kv.Store.
func (c *Cluster) Len(ctx context.Context) (int, error) {
	live, err := c.liveKeys(ctx)
	if err != nil {
		return 0, err
	}
	return len(live), nil
}

// liveKeys resolves the set of live keys: per-node key listings, then one
// batched record read per node, then winner resolution per key (without the
// repair machinery — listing is not a data-path read).
func (c *Cluster) liveKeys(ctx context.Context) (map[string]bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reps, err := c.allMembers()
	if err != nil {
		return nil, err
	}
	type nodeKeys struct {
		rep  replica
		keys []string
		err  error
	}
	listed := make([]nodeKeys, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep replica) {
			defer wg.Done()
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			ks, err := rep.store.Keys(nctx)
			listed[i] = nodeKeys{rep: rep, keys: ks, err: err}
		}(i, rep)
	}
	wg.Wait()

	failed := 0
	var causes []error
	for _, nk := range listed {
		if nk.err != nil {
			failed++
			causes = append(causes, fmt.Errorf("node %s: %w", nk.rep.id, nk.err))
		}
	}
	if failed > 0 && failed >= c.opts.WriteQuorum {
		return nil, c.quorumError("keys", "", false, causes)
	}

	// Batched record fetch per node, then highest version wins per key.
	type verdict struct {
		ver  uint64
		tomb bool
	}
	winners := make(map[string]verdict)
	var mu sync.Mutex
	for i := range listed {
		nk := listed[i]
		if nk.err != nil || len(nk.keys) == 0 {
			continue
		}
		wg.Add(1)
		go func(nk nodeKeys) {
			defer wg.Done()
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			recs, _ := kv.GetMulti(nctx, nk.rep.store, nk.keys) // partial results still count
			mu.Lock()
			defer mu.Unlock()
			for k, b := range recs {
				rec, derr := DecodeRecord(b)
				if derr != nil {
					continue
				}
				if w, ok := winners[k]; !ok || rec.Version > w.ver {
					winners[k] = verdict{ver: rec.Version, tomb: rec.Tombstone}
				}
			}
		}(nk)
	}
	wg.Wait()

	live := make(map[string]bool, len(winners))
	for k, w := range winners {
		if !w.tomb {
			live[k] = true
		}
	}
	return live, nil
}

// Clear implements kv.Store. A clear that misses a node would resurrect
// everything that node replicates, so it requires full membership: every
// node must acknowledge.
func (c *Cluster) Clear(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	reps, err := c.allMembers()
	if err != nil {
		return err
	}
	all := make([]int, keyStripes)
	for i := range all {
		all[i] = i
	}
	c.lockStripes(all)
	defer c.unlockStripes(all)

	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep replica) {
			defer wg.Done()
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			errs[i] = rep.store.Clear(nctx)
		}(i, rep)
	}
	wg.Wait()
	var causes []error
	for i, err := range errs {
		if err != nil {
			causes = append(causes, fmt.Errorf("node %s: %w", reps[i].id, err))
		}
	}
	if len(causes) > 0 {
		return c.quorumError("clear", "", true, causes)
	}
	c.mu.Lock()
	c.hints = make(map[string][]hint)
	c.mu.Unlock()
	return nil
}

// Close implements kv.Store: it closes every member store (the cluster owns
// its nodes, as OpenSQLStore owns its database).
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	members := make([]kv.Store, 0, len(c.members))
	for _, s := range c.members {
		members = append(members, s)
	}
	c.mu.Unlock()
	var firstErr error
	for _, s := range members {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
