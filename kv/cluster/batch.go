package cluster

import (
	"context"
	"fmt"
	"sync"

	"edsc/kv"
)

// Batch operations split per shard: each member node receives exactly one
// batched call covering every key it replicates, the calls fan out in
// parallel, and quorum resolution then runs per key over the per-node
// answers. A k-key batch over an m-node cluster costs at most m node round
// trips instead of k quorum operations.

// nodePlan is the per-node slice of a multi-key operation.
type nodePlan struct {
	rep  replica
	keys []string
}

// planBatch maps keys to the nodes that replicate them. Each key appears in
// exactly Replication plans; reverse gives key -> replica list for quorum
// counting.
func (c *Cluster) planBatch(keys []string) (plans []*nodePlan, reverse map[string][]replica, err error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, nil, kv.ErrClosed
	}
	byNode := make(map[string]*nodePlan)
	reverse = make(map[string][]replica, len(keys))
	for _, k := range keys {
		if _, dup := reverse[k]; dup {
			continue
		}
		for _, id := range c.ring.LookupN(k, c.opts.Replication) {
			rep := replica{id: id, store: c.members[id]}
			p := byNode[id]
			if p == nil {
				p = &nodePlan{rep: rep}
				byNode[id] = p
				plans = append(plans, p)
			}
			p.keys = append(p.keys, k)
			reverse[k] = append(reverse[k], rep)
		}
	}
	return plans, reverse, nil
}

// GetMulti implements kv.Batch: one batched read per node, quorum
// resolution per key. Missing keys are omitted; a key that cannot reach its
// read quorum fails the whole call (partial results still return, matching
// the kv.Batch contract of "partial results plus first error").
func (c *Cluster) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	vvs, err := c.GetMultiVersioned(ctx, keys)
	var out map[string][]byte
	if len(vvs) > 0 {
		out = make(map[string][]byte, len(vvs))
		for k, vv := range vvs {
			out[k] = vv.Value
		}
	}
	return out, err
}

// GetMultiVersioned implements kv.VersionedBatch with the same sharded plan.
func (c *Cluster) GetMultiVersioned(ctx context.Context, keys []string) (map[string]kv.VersionedValue, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return map[string]kv.VersionedValue{}, nil
	}
	for _, k := range keys {
		if err := kv.CheckKey(k); err != nil {
			return nil, err
		}
	}
	plans, reverse, err := c.planBatch(keys)
	if err != nil {
		return nil, err
	}

	// One batched fetch per node. Node-level errors surface as per-key
	// errored responses, so quorum math treats them like any down replica.
	type nodeFetch struct {
		plan *nodePlan
		got  map[string][]byte
		err  error
	}
	fetches := make([]nodeFetch, len(plans))
	var wg sync.WaitGroup
	for i, p := range plans {
		wg.Add(1)
		go func(i int, p *nodePlan) {
			defer wg.Done()
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			got, err := kv.GetMulti(nctx, p.rep.store, p.keys)
			fetches[i] = nodeFetch{plan: p, got: got, err: err}
		}(i, p)
	}
	wg.Wait()

	// Reassemble per-key responses in replica-preference order.
	byNode := make(map[string]*nodeFetch, len(fetches))
	for i := range fetches {
		byNode[fetches[i].plan.rep.id] = &fetches[i]
	}
	out := make(map[string]kv.VersionedValue)
	var firstErr error
	for key, reps := range reverse {
		resp := make([]readResponse, len(reps))
		for i, rep := range reps {
			f := byNode[rep.id]
			b, ok := f.got[key]
			switch {
			case ok:
				rec, derr := DecodeRecord(b)
				if derr != nil {
					resp[i] = readResponse{rep: rep, err: fmt.Errorf("node %s key %q: %w", rep.id, key, derr)}
					continue
				}
				rec.Value = append([]byte(nil), rec.Value...)
				resp[i] = readResponse{rep: rep, rec: rec, exists: true}
			case f.err != nil:
				resp[i] = readResponse{rep: rep, err: fmt.Errorf("node %s: %w", rep.id, f.err)}
			default:
				resp[i] = readResponse{rep: rep} // answered: key absent
			}
		}
		rec, exists, err := c.resolveRead(ctx, "getmulti", key, reps, resp, false)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if exists && !rec.Tombstone {
			out[key] = kv.VersionedValue{Value: rec.Value, Version: versionString(rec.Version)}
		}
	}
	return out, firstErr
}

// PutMulti implements kv.Batch: versions are assigned up front, every
// affected stripe locks in sorted order (so overlapping batches cannot
// deadlock), and each node receives one batched write for its share. A key
// acked by fewer than W replicas fails the batch with a quorum-ambiguous
// error — some replicas may hold the new value, and hinted handoff will
// finish the job for nodes that come back.
func (c *Cluster) PutMulti(ctx context.Context, pairs map[string][]byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(pairs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		if err := kv.CheckKey(k); err != nil {
			return err
		}
		keys = append(keys, k)
	}
	plans, reverse, err := c.planBatch(keys)
	if err != nil {
		return err
	}
	recs := make(map[string]record, len(pairs))
	for k, v := range pairs {
		recs[k] = record{Version: c.nextVersion(), Value: append([]byte(nil), v...)}
	}

	stripes := c.stripesFor(keys)
	c.lockStripes(stripes)

	type nodeWrite struct {
		plan *nodePlan
		err  error
	}
	writes := make([]nodeWrite, len(plans))
	var wg sync.WaitGroup
	for i, p := range plans {
		wg.Add(1)
		go func(i int, p *nodePlan) {
			defer wg.Done()
			enc := make(map[string][]byte, len(p.keys))
			for _, k := range p.keys {
				enc[k] = recs[k].Encode()
			}
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			writes[i] = nodeWrite{plan: p, err: kv.PutMulti(nctx, p.rep.store, enc)}
		}(i, p)
	}
	wg.Wait()

	okNode := make(map[string]bool, len(writes))
	var causes []error
	var ackedNodes []replica
	for _, w := range writes {
		if w.err == nil {
			okNode[w.plan.rep.id] = true
			ackedNodes = append(ackedNodes, w.plan.rep)
			continue
		}
		causes = append(causes, fmt.Errorf("node %s: %w", w.plan.rep.id, w.err))
		// A failed node write is conservative: hint every key it carried
		// (hints install only-if-newer, so over-hinting is harmless).
		for _, k := range w.plan.keys {
			c.addHint(w.plan.rep.id, k, recs[k])
		}
	}
	failed := false
	degraded := false
	for _, reps := range reverse {
		acks := 0
		for _, rep := range reps {
			if okNode[rep.id] {
				acks++
			}
		}
		if acks < c.opts.WriteQuorum {
			failed = true
		} else if acks < len(reps) {
			degraded = true
		}
	}
	c.unlockStripes(stripes)

	if failed {
		return c.quorumError("putmulti", "", true, causes)
	}
	if degraded {
		c.degraded.Add(1)
	}
	c.writes.Add(int64(len(pairs)))
	c.drainHints(ctx, ackedNodes)
	return nil
}
