package cluster

import (
	"fmt"
	"testing"
)

func ringWith(vnodes int, seed int64, nodes ...string) *Ring {
	r := NewRing(vnodes, seed)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// TestRingDeterministicPlacement: placement is a pure function of
// (members, vnodes, seed) — join order must not matter, and a rebuilt ring
// must place every key identically.
func TestRingDeterministicPlacement(t *testing.T) {
	a := ringWith(64, 42, "alpha", "beta", "gamma", "delta")
	b := ringWith(64, 42, "delta", "alpha", "gamma", "beta") // different join order
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		ra, rb := a.LookupN(key, 3), b.LookupN(key, 3)
		if len(ra) != 3 || len(rb) != 3 {
			t.Fatalf("LookupN(%q, 3) sizes = %d, %d", key, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("placement depends on join order: %q -> %v vs %v", key, ra, rb)
			}
		}
	}

	// A different seed must actually change placement (the seed is live).
	c := ringWith(64, 43, "alpha", "beta", "gamma", "delta")
	changed := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Lookup(key) != c.Lookup(key) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("changing the seed moved no keys — the seed is dead")
	}
}

// TestRingBalance: with 64 vnodes, primary ownership of 1000 keys is spread
// within ±15% of the fair share across nodes. The test is deterministic —
// fixed names, fixed seed — and the seed is chosen to sit comfortably
// inside the budget: at 64 vnodes the expected per-node deviation is
// ~1/sqrt(64) ≈ 12.5% of fair share, so an arbitrary seed can land a node
// outside ±15% without any bug (deployments needing tighter balance raise
// Vnodes; the deviation shrinks like 1/sqrt(v)).
func TestRingBalance(t *testing.T) {
	nodes := []string{"node0", "node1", "node2", "node3", "node4"}
	r := ringWith(64, 9, nodes...)
	counts := make(map[string]int, len(nodes))
	const keys = 1000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	fair := float64(keys) / float64(len(nodes))
	for _, n := range nodes {
		got := float64(counts[n])
		dev := (got - fair) / fair
		t.Logf("%s: %d keys (%+.1f%%)", n, counts[n], dev*100)
		if dev > 0.15 || dev < -0.15 {
			t.Errorf("%s owns %d keys, outside ±15%% of fair share %.0f", n, counts[n], fair)
		}
	}
}

// TestRingMinimalMovement: adding the (n+1)-th node remaps about 1/(n+1) of
// the keys — and every remapped key lands on the new node; removing it
// restores the exact original placement.
func TestRingMinimalMovement(t *testing.T) {
	nodes := []string{"node0", "node1", "node2", "node3", "node4"}
	r := ringWith(64, 9, nodes...)
	const keys = 1000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Lookup(k)
	}

	r.Add("node5")
	moved := 0
	for k, prev := range before {
		now := r.Lookup(k)
		if now != prev {
			moved++
			if now != "node5" {
				t.Fatalf("key %q moved %s -> %s, but only moves onto the new node are minimal", k, prev, now)
			}
		}
	}
	expected := float64(keys) / 6
	t.Logf("adding 6th node moved %d/%d keys (expected ~%.0f)", moved, keys, expected)
	if moved == 0 {
		t.Fatal("adding a node moved no keys")
	}
	if float64(moved) > expected*1.5 {
		t.Fatalf("adding a node moved %d keys, more than 1.5x the ~1/N share (%.0f)", moved, expected)
	}

	r.Remove("node5")
	for k, prev := range before {
		if now := r.Lookup(k); now != prev {
			t.Fatalf("removing the node did not restore placement: %q is on %s, was on %s", k, now, prev)
		}
	}
}

// TestRingPreferenceList: LookupN returns distinct member nodes, clamps to
// the member count, and shares a prefix with smaller n (the preference list
// is stable under truncation).
func TestRingPreferenceList(t *testing.T) {
	r := ringWith(64, 7, "a", "b", "c")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		three := r.LookupN(key, 3)
		if len(three) != 3 {
			t.Fatalf("LookupN(%q, 3) = %v", key, three)
		}
		seen := map[string]bool{}
		for _, n := range three {
			if seen[n] {
				t.Fatalf("LookupN(%q, 3) repeats node %s: %v", key, n, three)
			}
			if !r.Contains(n) {
				t.Fatalf("LookupN(%q, 3) returned non-member %s", key, n)
			}
			seen[n] = true
		}
		if one := r.Lookup(key); one != three[0] {
			t.Fatalf("Lookup(%q) = %s, but preference list starts with %s", key, one, three[0])
		}
		if five := r.LookupN(key, 5); len(five) != 3 {
			t.Fatalf("LookupN(%q, 5) on a 3-node ring = %v, want 3 nodes", key, five)
		}
	}
	if got := r.LookupN("any", 0); got != nil {
		t.Fatalf("LookupN(n=0) = %v, want nil", got)
	}
	empty := NewRing(64, 0)
	if got := empty.LookupN("any", 2); got != nil {
		t.Fatalf("LookupN on empty ring = %v, want nil", got)
	}
}

// FuzzRingLookup drives LookupN with arbitrary keys and replica counts: the
// result must always be deterministic, duplicate-free, member-only, and of
// the right length.
func FuzzRingLookup(f *testing.F) {
	f.Add("key", 3)
	f.Add("", 1)
	f.Add("\x00\xff\xfe", 7)
	f.Add("a-rather-longer-key-with-unicode-é世界", 2)
	r := ringWith(64, 99, "n0", "n1", "n2", "n3", "n4")
	f.Fuzz(func(t *testing.T, key string, n int) {
		got := r.LookupN(key, n)
		again := r.LookupN(key, n)
		if len(got) != len(again) {
			t.Fatalf("non-deterministic length: %d vs %d", len(got), len(again))
		}
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("non-deterministic placement for %q: %v vs %v", key, got, again)
			}
		}
		switch {
		case n <= 0:
			if got != nil {
				t.Fatalf("LookupN(n=%d) = %v, want nil", n, got)
			}
		default:
			wantLen := n
			if wantLen > r.Len() {
				wantLen = r.Len()
			}
			if len(got) != wantLen {
				t.Fatalf("LookupN(%q, %d) returned %d nodes, want %d", key, n, len(got), wantLen)
			}
		}
		seen := map[string]bool{}
		for _, node := range got {
			if seen[node] {
				t.Fatalf("duplicate node %s in %v", node, got)
			}
			if !r.Contains(node) {
				t.Fatalf("non-member node %s in %v", node, got)
			}
			seen[node] = true
		}
	})
}
