package kv_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"edsc/kv"
	"edsc/kv/kvtest"
)

func TestMemConformance(t *testing.T) {
	kvtest.Run(t, func(t *testing.T) (kv.Store, func()) {
		return kv.NewMem("mem"), nil
	}, kvtest.Options{})
}

func TestMemName(t *testing.T) {
	s := kv.NewMem("scratch")
	if s.Name() != "scratch" {
		t.Fatalf("Name = %q, want scratch", s.Name())
	}
}

func TestIsNotFound(t *testing.T) {
	if !kv.IsNotFound(kv.ErrNotFound) {
		t.Fatal("IsNotFound(ErrNotFound) = false")
	}
	wrapped := &kv.StoreError{Store: "s", Op: "get", Key: "k", Err: kv.ErrNotFound}
	if !kv.IsNotFound(wrapped) {
		t.Fatal("IsNotFound(wrapped ErrNotFound) = false")
	}
	if kv.IsNotFound(errors.New("other")) {
		t.Fatal("IsNotFound(other) = true")
	}
}

func TestStoreErrorMessage(t *testing.T) {
	e := &kv.StoreError{Store: "redis", Op: "get", Key: "user:1", Err: errors.New("conn reset")}
	want := `kv: redis get "user:1": conn reset`
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
	e2 := &kv.StoreError{Store: "redis", Op: "keys", Err: errors.New("timeout")}
	if e2.Error() != "kv: redis keys: timeout" {
		t.Fatalf("Error() = %q", e2.Error())
	}
}

func TestWrapErrPassThrough(t *testing.T) {
	if kv.WrapErr("s", "get", "k", nil) != nil {
		t.Fatal("WrapErr(nil) != nil")
	}
	for _, sentinel := range []error{kv.ErrNotFound, kv.ErrClosed, kv.ErrEmptyKey} {
		if got := kv.WrapErr("s", "get", "k", sentinel); got != sentinel {
			t.Fatalf("WrapErr(%v) = %v, want pass-through", sentinel, got)
		}
	}
	base := errors.New("boom")
	got := kv.WrapErr("s", "put", "k", base)
	var se *kv.StoreError
	if !errors.As(got, &se) || !errors.Is(got, base) {
		t.Fatalf("WrapErr(%v) = %#v, want *StoreError wrapping it", base, got)
	}
}

func TestCheckKey(t *testing.T) {
	if err := kv.CheckKey(""); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("CheckKey(\"\") = %v, want ErrEmptyKey", err)
	}
	if err := kv.CheckKey("x"); err != nil {
		t.Fatalf("CheckKey(\"x\") = %v, want nil", err)
	}
}

func TestStringCodecRoundTrip(t *testing.T) {
	c := kv.StringCodec{}
	for _, s := range []string{"", "hello", "héllo 世界", "\x00\x01"} {
		b, err := c.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(b)
		if err != nil || got != s {
			t.Fatalf("round trip %q -> %q, %v", s, got, err)
		}
	}
}

func TestInt64CodecRoundTrip(t *testing.T) {
	c := kv.Int64Codec{}
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 123456789} {
		b, err := c.Encode(v)
		if err != nil || len(b) != 8 {
			t.Fatalf("Encode(%d): %v, %d bytes", v, err, len(b))
		}
		got, err := c.Decode(b)
		if err != nil || got != v {
			t.Fatalf("round trip %d -> %d, %v", v, got, err)
		}
	}
	if _, err := c.Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("Decode(short) succeeded, want error")
	}
}

func TestFloat64CodecRoundTrip(t *testing.T) {
	c := kv.Float64Codec{}
	prop := func(v float64) bool {
		b, err := c.Encode(v)
		if err != nil {
			return false
		}
		got, err := c.Decode(b)
		if err != nil {
			return false
		}
		return got == v || (math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(nil); err == nil {
		t.Fatal("Decode(nil) succeeded, want error")
	}
}

func TestJSONCodec(t *testing.T) {
	type doc struct {
		ID   int      `json:"id"`
		Tags []string `json:"tags"`
	}
	c := kv.JSONCodec[doc]{}
	in := doc{ID: 7, Tags: []string{"a", "b"}}
	b, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(b)
	if err != nil || !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip = %+v, %v; want %+v", got, err, in)
	}
	if _, err := c.Decode([]byte("{not json")); err == nil {
		t.Fatal("Decode(bad json) succeeded, want error")
	}
}

func TestGobCodec(t *testing.T) {
	type rec struct {
		N int
		M map[string]int
	}
	c := kv.GobCodec[rec]{}
	in := rec{N: 3, M: map[string]int{"x": 1}}
	b, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(b)
	if err != nil || !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip = %+v, %v; want %+v", got, err, in)
	}
}

func TestBytesCodecCopies(t *testing.T) {
	c := kv.BytesCodec{}
	src := []byte("abc")
	enc, _ := c.Encode(src)
	src[0] = 'Z'
	if string(enc) != "abc" {
		t.Fatalf("Encode aliased input: %q", enc)
	}
}

func TestInt64Key(t *testing.T) {
	kc := kv.Int64Key{}
	s, err := kc.EncodeKey(-42)
	if err != nil || s != "-42" {
		t.Fatalf("EncodeKey(-42) = %q, %v", s, err)
	}
	v, err := kc.DecodeKey("-42")
	if err != nil || v != -42 {
		t.Fatalf("DecodeKey = %d, %v", v, err)
	}
	if _, err := kc.DecodeKey("abc"); err == nil {
		t.Fatal("DecodeKey(abc) succeeded, want error")
	}
}

func TestStringKeyRejectsEmpty(t *testing.T) {
	if _, err := (kv.StringKey{}).EncodeKey(""); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("EncodeKey(\"\") err = %v, want ErrEmptyKey", err)
	}
}

func TestMapTypedAccess(t *testing.T) {
	ctx := context.Background()
	store := kv.NewMem("m")
	type user struct {
		Name string `json:"name"`
		Age  int    `json:"age"`
	}
	users := kv.NewMap[int64, user](store, kv.Int64Key{}, kv.JSONCodec[user]{})

	if err := users.Put(ctx, 1, user{Name: "ada", Age: 36}); err != nil {
		t.Fatal(err)
	}
	if err := users.Put(ctx, 2, user{Name: "bob", Age: 41}); err != nil {
		t.Fatal(err)
	}
	got, err := users.Get(ctx, 1)
	if err != nil || got.Name != "ada" {
		t.Fatalf("Get(1) = %+v, %v", got, err)
	}
	ok, err := users.Contains(ctx, 2)
	if err != nil || !ok {
		t.Fatalf("Contains(2) = %v, %v", ok, err)
	}
	keys, err := users.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if !reflect.DeepEqual(keys, []int64{1, 2}) {
		t.Fatalf("Keys = %v", keys)
	}
	if n, _ := users.Len(ctx); n != 2 {
		t.Fatalf("Len = %d", n)
	}
	if err := users.Delete(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := users.Get(ctx, 1); !kv.IsNotFound(err) {
		t.Fatalf("Get after Delete err = %v", err)
	}
	if err := users.Clear(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := users.Len(ctx); n != 0 {
		t.Fatalf("Len after Clear = %d", n)
	}
}

func TestMapSwapStores(t *testing.T) {
	// The paper's headline property: the same application code runs against
	// any store implementing the interface.
	ctx := context.Background()
	run := func(s kv.Store) error {
		m := kv.NewStringMap[string](s, kv.StringCodec{})
		if err := m.Put(ctx, "greeting", "hello"); err != nil {
			return err
		}
		v, err := m.Get(ctx, "greeting")
		if err != nil {
			return err
		}
		if v != "hello" {
			t.Fatalf("got %q", v)
		}
		return nil
	}
	for _, s := range []kv.Store{kv.NewMem("a"), kv.NewMem("b")} {
		if err := run(s); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestMapKeyCodecErrors(t *testing.T) {
	store := kv.NewMem("m")
	m := kv.NewMap[string, string](store, kv.StringKey{}, kv.StringCodec{})
	ctx := context.Background()
	if err := m.Put(ctx, "", "v"); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("Put empty key err = %v", err)
	}
	if _, err := m.Get(ctx, ""); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("Get empty key err = %v", err)
	}
}

func TestMemChaos(t *testing.T) {
	kvtest.RunChaos(t, func(t *testing.T) (kv.Store, func()) {
		return kv.NewMem("mem"), nil
	}, kvtest.ChaosOptions{})
}

func TestMemCompareAndPut(t *testing.T) {
	kvtest.RunCompareAndPut(t, func(t *testing.T) (kv.Store, func()) {
		return kv.NewMem("mem"), nil
	})
}
