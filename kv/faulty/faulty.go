// Package faulty wraps any kv.Store in a deterministic, seedable fault
// injector. The paper's central observation (§II, §V) is that data store
// clients see high and *variable* latency and transient failure from remote
// stores — Cloud Store 1's variability is a headline finding — so client
// code that only works when every operation succeeds on the first try has
// never really been tested. This wrapper makes failure an input: error
// rates per operation (injected before or after the operation takes
// effect), "fail the first N operations", latency spikes, torn writes, and
// stale reads, all driven by one seeded RNG so a failing run reproduces.
//
// Error polarity matters for retry testing. A fault injected *before* the
// operation applies is an unambiguous failure: nothing happened, a retry is
// always safe. A fault injected *after* the operation applies models the
// ambiguous network failure every remote client eventually meets — the
// write landed but the acknowledgement was lost — which is exactly the case
// that separates idempotency-aware retry policies (kv/resilient) from naive
// ones.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"edsc/kv"
)

// ErrInjected is the root cause of every error this package fabricates.
// Wrappers above (kv/resilient) treat it like any other transient store
// failure; tests match it with errors.Is to tell injected faults from real
// bugs.
var ErrInjected = errors.New("faulty: injected fault")

// Options tune the fault model. All probabilities are in [0,1]; the zero
// value injects nothing (a transparent wrapper).
type Options struct {
	// Seed makes the fault sequence reproducible. Two stores built with the
	// same seed and driven with the same operation sequence inject the same
	// faults.
	Seed int64

	// ErrBefore is the probability an operation fails before reaching the
	// inner store (nothing applied; retry always safe).
	ErrBefore float64

	// ErrAfter is the probability a Put or Delete fails *after* it has
	// taken effect — the lost-acknowledgement case. Reads are never failed
	// after the fact (a read has no effect to lose).
	ErrAfter float64

	// FailFirstN fails the first N operations unconditionally (before
	// apply), then lets traffic through. Deterministic fuel for retry and
	// circuit-breaker tests.
	FailFirstN int

	// PSpike is the probability an operation stalls for Spike before
	// proceeding — the tail-latency events hedged reads exist for.
	PSpike float64
	// Spike is the injected stall (default 2ms when PSpike > 0).
	Spike time.Duration

	// TornWrites is the probability a Put writes only a prefix of the value
	// and then reports failure — a torn write that a later read can
	// observe. Unmaskable by blind retry; used to test detection, not
	// recovery.
	TornWrites float64

	// StaleReads is the probability a Get returns the key's previous value
	// instead of the current one, modelling an eventually-consistent
	// replica that has not yet converged.
	StaleReads float64
}

// Stats counts injected faults by kind.
type Stats struct {
	ErrsBefore int64 // failures injected before the inner op ran
	ErrsAfter  int64 // failures injected after the inner op took effect
	FailFirst  int64 // failures from the FailFirstN budget
	DownErrs   int64 // operations refused while the node was down (SetDown)
	Spikes     int64 // latency spikes served
	TornWrites int64 // torn writes committed to the inner store
	StaleReads int64 // stale values returned
}

// Injected is the total number of injected faults of any kind.
func (s Stats) Injected() int64 {
	return s.ErrsBefore + s.ErrsAfter + s.FailFirst + s.DownErrs + s.Spikes + s.TornWrites + s.StaleReads
}

// Store is the fault-injecting wrapper. It is safe for concurrent use; the
// fault sequence is fully deterministic under sequential use and remains
// seed-reproducible in aggregate under concurrency (interleaving decides
// which operation receives which draw).
type Store struct {
	inner kv.Store
	opts  Options

	mu        sync.Mutex
	rng       *rand.Rand
	remaining int               // FailFirstN budget left
	down      bool              // SetDown gate: node is dead
	last      map[string][]byte // newest value written through this wrapper
	prev      map[string][]byte // value before that (stale-read material)
	stats     Stats
}

var _ kv.Store = (*Store)(nil)

// New wraps inner in a fault injector.
func New(inner kv.Store, opts Options) *Store {
	if opts.PSpike > 0 && opts.Spike <= 0 {
		opts.Spike = 2 * time.Millisecond
	}
	return &Store{
		inner:     inner,
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		remaining: opts.FailFirstN,
		last:      make(map[string][]byte),
		prev:      make(map[string][]byte),
	}
}

// Inner returns the wrapped store.
func (s *Store) Inner() kv.Store { return s.inner }

// SetDown kills or restores the node: while down, every operation fails
// with ErrInjected before reaching the inner store, exactly like an
// unreachable machine. The inner store's data survives, so restoring the
// node models a crash-recover cycle (stale but intact replica) — the fuel
// for the node-kill chaos suite and for hinted-handoff tests.
func (s *Store) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// Down reports whether the node is currently killed.
func (s *Store) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// Stats returns a snapshot of the injected-fault counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Name implements kv.Store.
func (s *Store) Name() string { return "faulty(" + s.inner.Name() + ")" }

func injectErr(op, key string) error {
	return fmt.Errorf("%w (%s %q)", ErrInjected, op, key)
}

// before runs the pre-operation fault stage: spike, FailFirstN, ErrBefore.
// It returns a non-nil error when the operation must fail without reaching
// the inner store.
func (s *Store) before(ctx context.Context, op, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.down {
		s.stats.DownErrs++
		s.mu.Unlock()
		return fmt.Errorf("%w (node down: %s %q)", ErrInjected, op, key)
	}
	spike := s.opts.PSpike > 0 && s.rng.Float64() < s.opts.PSpike
	if spike {
		s.stats.Spikes++
	}
	failFirst := s.remaining > 0
	if failFirst {
		s.remaining--
		s.stats.FailFirst++
	}
	errBefore := !failFirst && s.opts.ErrBefore > 0 && s.rng.Float64() < s.opts.ErrBefore
	if errBefore {
		s.stats.ErrsBefore++
	}
	s.mu.Unlock()

	if spike {
		t := time.NewTimer(s.opts.Spike)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if failFirst || errBefore {
		return injectErr(op, key)
	}
	return nil
}

// after runs the post-write fault stage: the operation already took effect,
// but the caller is told it failed.
func (s *Store) after(op, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ErrAfter > 0 && s.rng.Float64() < s.opts.ErrAfter {
		s.stats.ErrsAfter++
		return injectErr(op, key)
	}
	return nil
}

// Get implements kv.Store, possibly serving a stale value.
func (s *Store) Get(ctx context.Context, key string) ([]byte, error) {
	if err := s.before(ctx, "get", key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if old, ok := s.prev[key]; ok && s.opts.StaleReads > 0 && s.rng.Float64() < s.opts.StaleReads {
		s.stats.StaleReads++
		s.mu.Unlock()
		return append([]byte(nil), old...), nil
	}
	s.mu.Unlock()
	return s.inner.Get(ctx, key)
}

// Put implements kv.Store. A torn write commits a prefix of the value and
// reports failure; an after-fault commits the full value and reports
// failure.
func (s *Store) Put(ctx context.Context, key string, value []byte) error {
	if err := s.before(ctx, "put", key); err != nil {
		return err
	}
	s.mu.Lock()
	torn := s.opts.TornWrites > 0 && s.rng.Float64() < s.opts.TornWrites
	if torn {
		s.stats.TornWrites++
	}
	s.mu.Unlock()
	if torn {
		if err := s.inner.Put(ctx, key, value[:len(value)/2]); err != nil {
			return err
		}
		s.recordWrite(key, value[:len(value)/2])
		return injectErr("put", key)
	}
	if err := s.inner.Put(ctx, key, value); err != nil {
		return err
	}
	s.recordWrite(key, value)
	return s.after("put", key)
}

// recordWrite shifts the key's write history for stale-read injection.
func (s *Store) recordWrite(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.last[key]; ok {
		s.prev[key] = cur
	}
	s.last[key] = append([]byte(nil), value...)
}

// Delete implements kv.Store.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := s.before(ctx, "delete", key); err != nil {
		return err
	}
	if err := s.inner.Delete(ctx, key); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.last, key)
	delete(s.prev, key)
	s.mu.Unlock()
	return s.after("delete", key)
}

// Contains implements kv.Store.
func (s *Store) Contains(ctx context.Context, key string) (bool, error) {
	if err := s.before(ctx, "contains", key); err != nil {
		return false, err
	}
	return s.inner.Contains(ctx, key)
}

// Keys implements kv.Store.
func (s *Store) Keys(ctx context.Context) ([]string, error) {
	if err := s.before(ctx, "keys", ""); err != nil {
		return nil, err
	}
	return s.inner.Keys(ctx)
}

// Len implements kv.Store.
func (s *Store) Len(ctx context.Context) (int, error) {
	if err := s.before(ctx, "len", ""); err != nil {
		return 0, err
	}
	return s.inner.Len(ctx)
}

// Clear implements kv.Store.
func (s *Store) Clear(ctx context.Context) error {
	if err := s.before(ctx, "clear", ""); err != nil {
		return err
	}
	if err := s.inner.Clear(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	s.last = make(map[string][]byte)
	s.prev = make(map[string][]byte)
	s.mu.Unlock()
	return nil
}

// Close implements kv.Store (faults do not apply: shutdown must work).
func (s *Store) Close() error { return s.inner.Close() }
