package faulty

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"edsc/kv"
)

func TestTransparentWhenZero(t *testing.T) {
	ctx := context.Background()
	s := New(kv.NewMem("m"), Options{})
	for i := 0; i < 50; i++ {
		if err := s.Put(ctx, "k", []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if v, err := s.Get(ctx, "k"); err != nil || string(v) != "v" {
			t.Fatalf("Get = %q, %v", v, err)
		}
	}
	if n := s.Stats().Injected(); n != 0 {
		t.Fatalf("zero options injected %d faults", n)
	}
}

func TestFailFirstN(t *testing.T) {
	ctx := context.Background()
	s := New(kv.NewMem("m"), Options{FailFirstN: 3})
	for i := 0; i < 3; i++ {
		if err := s.Put(ctx, "k", []byte("v")); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("op after budget: %v", err)
	}
	if st := s.Stats(); st.FailFirst != 3 {
		t.Fatalf("FailFirst = %d, want 3", st.FailFirst)
	}
}

func TestErrBeforeDoesNotApply(t *testing.T) {
	ctx := context.Background()
	inner := kv.NewMem("m")
	s := New(inner, Options{Seed: 1, ErrBefore: 1})
	if err := s.Put(ctx, "k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if _, err := inner.Get(ctx, "k"); !kv.IsNotFound(err) {
		t.Fatalf("pre-apply failure leaked a write: %v", err)
	}
}

func TestErrAfterApplies(t *testing.T) {
	ctx := context.Background()
	inner := kv.NewMem("m")
	s := New(inner, Options{Seed: 1, ErrAfter: 1})
	if err := s.Put(ctx, "k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The write took effect despite the reported failure.
	if v, err := inner.Get(ctx, "k"); err != nil || string(v) != "v" {
		t.Fatalf("post-apply failure lost the write: %q, %v", v, err)
	}
}

func TestTornWriteObservable(t *testing.T) {
	ctx := context.Background()
	inner := kv.NewMem("m")
	s := New(inner, Options{Seed: 1, TornWrites: 1})
	val := []byte("0123456789")
	if err := s.Put(ctx, "k", val); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	got, err := inner.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val[:len(val)/2]) {
		t.Fatalf("torn write stored %q, want prefix %q", got, val[:len(val)/2])
	}
}

func TestStaleReads(t *testing.T) {
	ctx := context.Background()
	s := New(kv.NewMem("m"), Options{Seed: 1, StaleReads: 1})
	if err := s.Put(ctx, "k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "old" {
		t.Fatalf("Get = %q, want injected stale value %q", v, "old")
	}
	if st := s.Stats(); st.StaleReads != 1 {
		t.Fatalf("StaleReads = %d, want 1", st.StaleReads)
	}
	// A key with no overwrite history cannot be served stale.
	if err := s.Put(ctx, "fresh", []byte("only")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get(ctx, "fresh"); err != nil || string(v) != "only" {
		t.Fatalf("Get(fresh) = %q, %v", v, err)
	}
}

func TestSpikeRespectsContext(t *testing.T) {
	s := New(kv.NewMem("m"), Options{Seed: 1, PSpike: 1, Spike: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Get(ctx, "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("spike ignored context: took %v", elapsed)
	}
}

func TestDeterministicSequence(t *testing.T) {
	run := func() Stats {
		ctx := context.Background()
		s := New(kv.NewMem("m"), Options{Seed: 42, ErrBefore: 0.3, ErrAfter: 0.2})
		for i := 0; i < 200; i++ {
			_ = s.Put(ctx, "k", []byte("v"))
			_, _ = s.Get(ctx, "k")
		}
		return s.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Injected() == 0 {
		t.Fatal("no faults injected at 30%/20% rates over 400 ops")
	}
}
