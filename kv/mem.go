package kv

import (
	"context"
	"sync"
)

// Mem is a trivial in-memory Store. It is the reference implementation of
// the Store contract, useful in tests and as scratch space; the DSCL's real
// in-process cache (with eviction and expiration management) lives in
// internal/cache and is exposed through package dscl.
type Mem struct {
	name string

	mu     sync.RWMutex
	m      map[string][]byte
	closed bool
}

// NewMem returns an empty in-memory store with the given name.
func NewMem(name string) *Mem {
	return &Mem{name: name, m: make(map[string][]byte)}
}

var _ Store = (*Mem)(nil)

// Name implements Store.
func (s *Mem) Name() string { return s.name }

// Get implements Store.
func (s *Mem) Get(_ context.Context, key string) ([]byte, error) {
	if err := CheckKey(key); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.m[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Put implements Store.
func (s *Mem) Put(_ context.Context, key string, value []byte) error {
	if err := CheckKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.m[key] = append([]byte(nil), value...)
	return nil
}

// Delete implements Store.
func (s *Mem) Delete(_ context.Context, key string) error {
	if err := CheckKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.m[key]; !ok {
		return ErrNotFound
	}
	delete(s.m, key)
	return nil
}

// Contains implements Store.
func (s *Mem) Contains(_ context.Context, key string) (bool, error) {
	if err := CheckKey(key); err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, ErrClosed
	}
	_, ok := s.m[key]
	return ok, nil
}

// Keys implements Store.
func (s *Mem) Keys(_ context.Context) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	return keys, nil
}

// Len implements Store.
func (s *Mem) Len(_ context.Context) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return len(s.m), nil
}

// Clear implements Store.
func (s *Mem) Clear(_ context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.m = make(map[string][]byte)
	return nil
}

// Close implements Store.
func (s *Mem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
