package kv

import (
	"context"
	"fmt"
	"sync"
)

// Mem is a trivial in-memory Store. It is the reference implementation of
// the Store contract, useful in tests and as scratch space; the DSCL's real
// in-process cache (with eviction and expiration management) lives in
// internal/cache and is exposed through package dscl.
//
// Mem also implements CompareAndPut, making it the reference for the
// optimistic-concurrency contract: every write bumps an internal sequence
// number that serves as the key's version.
type Mem struct {
	name string

	mu     sync.RWMutex
	m      map[string][]byte
	ver    map[string]Version
	seq    uint64
	closed bool
}

// NewMem returns an empty in-memory store with the given name.
func NewMem(name string) *Mem {
	return &Mem{name: name, m: make(map[string][]byte), ver: make(map[string]Version)}
}

var (
	_ Store         = (*Mem)(nil)
	_ CompareAndPut = (*Mem)(nil)
)

// Name implements Store.
func (s *Mem) Name() string { return s.name }

// bump assigns the key a fresh version. Callers hold s.mu.
func (s *Mem) bump(key string) Version {
	s.seq++
	v := Version(fmt.Sprintf("m%d", s.seq))
	s.ver[key] = v
	return v
}

// Get implements Store.
func (s *Mem) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := CheckKey(key); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.m[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Put implements Store.
func (s *Mem) Put(ctx context.Context, key string, value []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := CheckKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.m[key] = append([]byte(nil), value...)
	s.bump(key)
	return nil
}

// PutIfVersion implements CompareAndPut: with NoVersion the write is
// create-only; otherwise it succeeds only while the stored version still
// matches since. A lost race returns ErrVersionMismatch.
func (s *Mem) PutIfVersion(ctx context.Context, key string, value []byte, since Version) (Version, error) {
	if err := ctx.Err(); err != nil {
		return NoVersion, err
	}
	if err := CheckKey(key); err != nil {
		return NoVersion, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return NoVersion, ErrClosed
	}
	cur, exists := s.ver[key]
	if since == NoVersion {
		if exists {
			return NoVersion, ErrVersionMismatch
		}
	} else if !exists || cur != since {
		return NoVersion, ErrVersionMismatch
	}
	s.m[key] = append([]byte(nil), value...)
	return s.bump(key), nil
}

// Delete implements Store.
func (s *Mem) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := CheckKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.m[key]; !ok {
		return ErrNotFound
	}
	delete(s.m, key)
	delete(s.ver, key)
	return nil
}

// Contains implements Store.
func (s *Mem) Contains(ctx context.Context, key string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if err := CheckKey(key); err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, ErrClosed
	}
	_, ok := s.m[key]
	return ok, nil
}

// Keys implements Store.
func (s *Mem) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	return keys, nil
}

// Len implements Store.
func (s *Mem) Len(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return len(s.m), nil
}

// Clear implements Store.
func (s *Mem) Clear(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.m = make(map[string][]byte)
	s.ver = make(map[string]Version)
	return nil
}

// Close implements Store.
func (s *Mem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
