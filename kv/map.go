package kv

import "context"

// Map is a typed view of a Store, the Go analogue of the paper's
// KeyValue<K,V> interface. A Map[K,V] binds a key codec and a value codec to
// an underlying byte-oriented Store; multiple Maps with different type
// parameters may share one Store (use distinct key prefixes to partition).
//
// Because Map is itself generic over the Store interface, every feature
// written against Store (async interface, monitoring, workload generation)
// applies to typed access for free — the property §II-A calls out as the key
// advantage of coding features against the interface rather than an
// implementation.
type Map[K, V any] struct {
	store Store
	kc    KeyCodec[K]
	vc    Codec[V]
}

// NewMap builds a typed view over store.
func NewMap[K, V any](store Store, kc KeyCodec[K], vc Codec[V]) *Map[K, V] {
	return &Map[K, V]{store: store, kc: kc, vc: vc}
}

// NewStringMap is shorthand for the common string-keyed case.
func NewStringMap[V any](store Store, vc Codec[V]) *Map[string, V] {
	return NewMap[string, V](store, StringKey{}, vc)
}

// Store returns the underlying byte-oriented store.
func (m *Map[K, V]) Store() Store { return m.store }

// Get fetches and decodes the value for k.
func (m *Map[K, V]) Get(ctx context.Context, k K) (V, error) {
	var zero V
	sk, err := m.kc.EncodeKey(k)
	if err != nil {
		return zero, err
	}
	raw, err := m.store.Get(ctx, sk)
	if err != nil {
		return zero, err
	}
	return m.vc.Decode(raw)
}

// Put encodes and stores v under k.
func (m *Map[K, V]) Put(ctx context.Context, k K, v V) error {
	sk, err := m.kc.EncodeKey(k)
	if err != nil {
		return err
	}
	raw, err := m.vc.Encode(v)
	if err != nil {
		return err
	}
	return m.store.Put(ctx, sk, raw)
}

// Delete removes k.
func (m *Map[K, V]) Delete(ctx context.Context, k K) error {
	sk, err := m.kc.EncodeKey(k)
	if err != nil {
		return err
	}
	return m.store.Delete(ctx, sk)
}

// Contains reports whether k is present.
func (m *Map[K, V]) Contains(ctx context.Context, k K) (bool, error) {
	sk, err := m.kc.EncodeKey(k)
	if err != nil {
		return false, err
	}
	return m.store.Contains(ctx, sk)
}

// Keys returns all stored keys, decoded.
func (m *Map[K, V]) Keys(ctx context.Context) ([]K, error) {
	raw, err := m.store.Keys(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]K, 0, len(raw))
	for _, s := range raw {
		k, err := m.kc.DecodeKey(s)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// Len returns the number of stored keys.
func (m *Map[K, V]) Len(ctx context.Context) (int, error) { return m.store.Len(ctx) }

// Clear removes every key from the underlying store.
func (m *Map[K, V]) Clear(ctx context.Context) error { return m.store.Clear(ctx) }
