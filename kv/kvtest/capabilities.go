package kvtest

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"edsc/kv"
)

// RunVersioned exercises the kv.Versioned contract against stores built by
// f. The store under test must implement kv.Versioned.
func RunVersioned(t *testing.T, f Factory) {
	t.Run("PutReturnsVersion", func(t *testing.T) {
		s := open(t, f)
		vs := requireVersioned(t, s)
		ctx := context.Background()
		v1, err := vs.PutVersioned(ctx, "k", []byte("one"))
		if err != nil || v1 == kv.NoVersion {
			t.Fatalf("PutVersioned = %q, %v", v1, err)
		}
		v2, err := vs.PutVersioned(ctx, "k", []byte("two"))
		if err != nil || v2 == v1 {
			t.Fatalf("version unchanged across update: %q -> %q, %v", v1, v2, err)
		}
	})
	t.Run("GetVersionedMatchesGet", func(t *testing.T) {
		s := open(t, f)
		vs := requireVersioned(t, s)
		ctx := context.Background()
		want, err := vs.PutVersioned(ctx, "k", []byte("value"))
		if err != nil {
			t.Fatal(err)
		}
		data, ver, err := vs.GetVersioned(ctx, "k")
		if err != nil || !bytes.Equal(data, []byte("value")) || ver != want {
			t.Fatalf("GetVersioned = %q, %q, %v; want version %q", data, ver, err, want)
		}
	})
	t.Run("ConditionalFetch", func(t *testing.T) {
		s := open(t, f)
		vs := requireVersioned(t, s)
		ctx := context.Background()
		ver, err := vs.PutVersioned(ctx, "k", []byte("current"))
		if err != nil {
			t.Fatal(err)
		}
		// Same version: no transfer.
		data, v, modified, err := vs.GetIfModified(ctx, "k", ver)
		if err != nil || modified || len(data) != 0 || v != ver {
			t.Fatalf("unmodified fetch = %q, %q, %v, %v", data, v, modified, err)
		}
		// Stale or unknown version: full value and the current version.
		data, v, modified, err = vs.GetIfModified(ctx, "k", kv.Version("bogus"))
		if err != nil || !modified || !bytes.Equal(data, []byte("current")) || v != ver {
			t.Fatalf("modified fetch = %q, %q, %v, %v", data, v, modified, err)
		}
	})
	t.Run("ConditionalFetchMissingKey", func(t *testing.T) {
		s := open(t, f)
		vs := requireVersioned(t, s)
		if _, _, _, err := vs.GetIfModified(context.Background(), "ghost", kv.Version("x")); !kv.IsNotFound(err) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	})
}

func requireVersioned(t *testing.T, s kv.Store) kv.Versioned {
	t.Helper()
	vs, ok := kv.As[kv.Versioned](s)
	if !ok {
		t.Fatalf("store %T does not provide kv.Versioned", s)
	}
	return vs
}

// RunExpiring exercises the kv.Expiring contract. Stores must honour
// millisecond-scale TTLs.
func RunExpiring(t *testing.T, f Factory) {
	t.Run("TTLExpires", func(t *testing.T) {
		s := open(t, f)
		es := requireExpiring(t, s)
		ctx := context.Background()
		if err := es.PutTTL(ctx, "k", []byte("v"), int64(40*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(ctx, "k"); err != nil {
			t.Fatalf("fresh TTL key unavailable: %v", err)
		}
		ttl, err := es.TTL(ctx, "k")
		if err != nil || ttl <= 0 || ttl > int64(40*time.Millisecond) {
			t.Fatalf("TTL = %d, %v", ttl, err)
		}
		time.Sleep(60 * time.Millisecond)
		if _, err := s.Get(ctx, "k"); !kv.IsNotFound(err) {
			t.Fatalf("expired key err = %v, want ErrNotFound", err)
		}
	})
	t.Run("NoTTL", func(t *testing.T) {
		s := open(t, f)
		es := requireExpiring(t, s)
		ctx := context.Background()
		if err := es.PutTTL(ctx, "k", []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
		ttl, err := es.TTL(ctx, "k")
		if err != nil || ttl != 0 {
			t.Fatalf("TTL(no expiry) = %d, %v; want 0", ttl, err)
		}
	})
	t.Run("TTLMissingKey", func(t *testing.T) {
		s := open(t, f)
		es := requireExpiring(t, s)
		if _, err := es.TTL(context.Background(), "ghost"); !kv.IsNotFound(err) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	})
}

func requireExpiring(t *testing.T, s kv.Store) kv.Expiring {
	t.Helper()
	es, ok := kv.As[kv.Expiring](s)
	if !ok {
		t.Fatalf("store %T does not provide kv.Expiring", s)
	}
	return es
}

// RunBatch exercises the kv.Batch contract.
func RunBatch(t *testing.T, f Factory) {
	requireBatch := func(t *testing.T, s kv.Store) kv.Batch {
		t.Helper()
		bs, ok := kv.As[kv.Batch](s)
		if !ok {
			t.Fatalf("store %T does not provide kv.Batch", s)
		}
		return bs
	}
	t.Run("RoundTrip", func(t *testing.T) {
		s := open(t, f)
		bs := requireBatch(t, s)
		ctx := context.Background()
		pairs := map[string][]byte{"a": []byte("1"), "b": []byte("2"), "c": {0x00, 0xFF}}
		if err := bs.PutMulti(ctx, pairs); err != nil {
			t.Fatal(err)
		}
		got, err := bs.GetMulti(ctx, []string{"a", "missing", "c", "b"})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("GetMulti = %v", got)
		}
		for k, want := range pairs {
			if !bytes.Equal(got[k], want) {
				t.Fatalf("GetMulti[%q] = %q, want %q", k, got[k], want)
			}
		}
		// Batch writes are visible through the plain interface and vice
		// versa.
		if v, err := s.Get(ctx, "a"); err != nil || string(v) != "1" {
			t.Fatalf("Get after PutMulti = %q, %v", v, err)
		}
		if err := s.Put(ctx, "d", []byte("4")); err != nil {
			t.Fatal(err)
		}
		got, err = bs.GetMulti(ctx, []string{"d"})
		if err != nil || string(got["d"]) != "4" {
			t.Fatalf("GetMulti after Put = %v, %v", got, err)
		}
	})
	t.Run("Empty", func(t *testing.T) {
		s := open(t, f)
		bs := requireBatch(t, s)
		ctx := context.Background()
		got, err := bs.GetMulti(ctx, nil)
		if err != nil || len(got) != 0 {
			t.Fatalf("GetMulti(nil) = %v, %v; want empty map, nil", got, err)
		}
		if err := bs.PutMulti(ctx, nil); err != nil {
			t.Fatalf("PutMulti(nil) = %v, want nil", err)
		}
	})
	t.Run("AllMissing", func(t *testing.T) {
		s := open(t, f)
		bs := requireBatch(t, s)
		got, err := bs.GetMulti(context.Background(), []string{"x", "y", "z"})
		if err != nil || len(got) != 0 {
			t.Fatalf("GetMulti of absent keys = %v, %v; want empty map, nil (absence is not an error)", got, err)
		}
	})
	t.Run("EmptyKeyRejected", func(t *testing.T) {
		s := open(t, f)
		bs := requireBatch(t, s)
		ctx := context.Background()
		if err := bs.PutMulti(ctx, map[string][]byte{"ok": []byte("v"), "": []byte("v")}); err == nil {
			t.Fatal("PutMulti with an empty key succeeded, want error")
		}
		if _, err := bs.GetMulti(ctx, []string{"ok", ""}); err == nil {
			t.Fatal("GetMulti with an empty key succeeded, want error")
		}
	})
	t.Run("Overwrite", func(t *testing.T) {
		s := open(t, f)
		bs := requireBatch(t, s)
		ctx := context.Background()
		if err := bs.PutMulti(ctx, map[string][]byte{"k": []byte("old")}); err != nil {
			t.Fatal(err)
		}
		if err := bs.PutMulti(ctx, map[string][]byte{"k": []byte("new")}); err != nil {
			t.Fatal(err)
		}
		got, err := bs.GetMulti(ctx, []string{"k"})
		if err != nil || string(got["k"]) != "new" {
			t.Fatalf("GetMulti after batch overwrite = %v, %v", got, err)
		}
	})
	t.Run("LargeBatch", func(t *testing.T) {
		s := open(t, f)
		bs := requireBatch(t, s)
		ctx := context.Background()
		const n = 100 // larger than any internal fan-out or chunking bound
		pairs := make(map[string][]byte, n)
		keys := make([]string, 0, n)
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("bulk-%03d", i)
			pairs[k] = []byte(fmt.Sprintf("value-%03d", i))
			keys = append(keys, k)
		}
		if err := bs.PutMulti(ctx, pairs); err != nil {
			t.Fatal(err)
		}
		got, err := bs.GetMulti(ctx, keys)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("GetMulti returned %d of %d keys", len(got), n)
		}
		for k, want := range pairs {
			if !bytes.Equal(got[k], want) {
				t.Fatalf("GetMulti[%q] = %q, want %q", k, got[k], want)
			}
		}
	})
	t.Run("DuplicateKeys", func(t *testing.T) {
		s := open(t, f)
		bs := requireBatch(t, s)
		ctx := context.Background()
		if err := bs.PutMulti(ctx, map[string][]byte{"dup": []byte("v")}); err != nil {
			t.Fatal(err)
		}
		got, err := bs.GetMulti(ctx, []string{"dup", "dup", "dup"})
		if err != nil || len(got) != 1 || string(got["dup"]) != "v" {
			t.Fatalf("GetMulti with duplicate keys = %v, %v", got, err)
		}
	})
}
