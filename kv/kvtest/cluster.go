package kvtest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"edsc/kv"
	"edsc/kv/cluster"
	"edsc/kv/faulty"
)

// NodeFactory builds one backend node for the cluster conformance suite.
// The returned cleanup runs after the subtest; it must tolerate the store
// already having been closed (the cluster closes members it still owns).
type NodeFactory func(t *testing.T, id string) (kv.Store, func())

// MemNodeFactory is the default NodeFactory: an in-process kv.Mem per node.
func MemNodeFactory(t *testing.T, id string) (kv.Store, func()) {
	return kv.NewMem(id), func() {}
}

// testCluster is a cluster under test plus the handles the suite needs to
// misbehave and to inspect: per-node kill switches (faulty wrappers) and
// the raw inner stores, for direct replica inspection past the cluster's
// own read path.
type testCluster struct {
	c   *cluster.Cluster
	ids []string
	sw  []*faulty.Store // kill switch per node, same order as ids
	raw []kv.Store      // unwrapped store per node
}

func buildCluster(t *testing.T, newNode NodeFactory, n int, opts cluster.Options) *testCluster {
	t.Helper()
	tc := &testCluster{}
	nodes := make([]cluster.Node, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node%d", i)
		inner, cleanup := newNode(t, id)
		t.Cleanup(cleanup)
		sw := faulty.New(inner, faulty.Options{})
		tc.ids = append(tc.ids, id)
		tc.sw = append(tc.sw, sw)
		tc.raw = append(tc.raw, inner)
		nodes[i] = cluster.Node{ID: id, Store: sw}
	}
	c, err := cluster.New("cluster-under-test", nodes, opts)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	tc.c = c
	return tc
}

// nodeRecord reads key directly from one backend node, bypassing the
// cluster — the ground truth for replica-state assertions.
func nodeRecord(t *testing.T, s kv.Store, key string) (cluster.Record, bool) {
	t.Helper()
	b, err := s.Get(context.Background(), key)
	if kv.IsNotFound(err) {
		return cluster.Record{}, false
	}
	if err != nil {
		t.Fatalf("direct node read of %q: %v", key, err)
	}
	rec, err := cluster.DecodeRecord(b)
	if err != nil {
		t.Fatalf("node holds %q in a non-cluster format: %v", key, err)
	}
	return rec, true
}

// RunCluster is the conformance suite for the distributed tier: it builds
// small clusters from newNode backends and checks the behaviors that make
// quorum replication honest — typed quorum failures, hinted handoff that
// drains on recovery, read repair that converges replicas (asserted by
// per-node inspection, not through the cluster's own reads), and membership
// changes under live load that lose no key.
func RunCluster(t *testing.T, newNode NodeFactory) {
	t.Run("Cluster", func(t *testing.T) {
		t.Run("QuorumUnreachable", func(t *testing.T) { clusterQuorumUnreachable(t, newNode) })
		t.Run("HintedHandoff", func(t *testing.T) { clusterHintedHandoff(t, newNode) })
		t.Run("ReadRepair", func(t *testing.T) { clusterReadRepair(t, newNode) })
		t.Run("MembershipUnderLoad", func(t *testing.T) { clusterMembership(t, newNode) })
	})
}

// clusterQuorumUnreachable: with too few replicas alive, reads and writes
// fail with a typed *kv.StoreError wrapping cluster.ErrNoQuorum (and, for
// writes, kv.ErrAmbiguous — the survivors may have applied it); recovery
// restores service.
func clusterQuorumUnreachable(t *testing.T, newNode NodeFactory) {
	ctx := context.Background()
	tc := buildCluster(t, newNode, 3, cluster.Options{ReadQuorum: 2, WriteQuorum: 2})

	if err := tc.c.Put(ctx, "q", []byte("v1")); err != nil {
		t.Fatalf("Put with all nodes up: %v", err)
	}

	tc.sw[0].SetDown(true)
	tc.sw[1].SetDown(true)

	_, err := tc.c.Get(ctx, "q")
	if err == nil {
		t.Fatal("Get succeeded with 2 of 3 nodes down (R=2)")
	}
	var se *kv.StoreError
	if !errors.As(err, &se) {
		t.Fatalf("quorum failure is not a *kv.StoreError: %v", err)
	}
	if se.Op != "get" || se.Store != tc.c.Name() {
		t.Fatalf("StoreError fields = %q/%q, want get/%q", se.Op, se.Store, tc.c.Name())
	}
	if !errors.Is(err, cluster.ErrNoQuorum) {
		t.Fatalf("read quorum failure does not wrap ErrNoQuorum: %v", err)
	}
	if !errors.Is(err, faulty.ErrInjected) {
		t.Fatalf("quorum failure hides its node causes: %v", err)
	}

	err = tc.c.Put(ctx, "q", []byte("v2"))
	if err == nil {
		t.Fatal("Put succeeded with 2 of 3 nodes down (W=2)")
	}
	if !errors.Is(err, cluster.ErrNoQuorum) || !errors.Is(err, kv.ErrAmbiguous) {
		t.Fatalf("write quorum failure must wrap ErrNoQuorum and kv.ErrAmbiguous: %v", err)
	}

	tc.sw[0].SetDown(false)
	tc.sw[1].SetDown(false)
	if err := tc.c.Put(ctx, "q", []byte("v3")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if v, err := tc.c.Get(ctx, "q"); err != nil || string(v) != "v3" {
		t.Fatalf("Get after recovery = %q, %v, want v3", v, err)
	}
	if st := tc.c.Stats(); st.QuorumFailures == 0 {
		t.Fatal("Stats recorded no quorum failures")
	}
}

// clusterHintedHandoff: a write that misses a down replica succeeds
// degraded and leaves a hint; after the node recovers, FlushHints installs
// the record on it — verified on the node itself.
func clusterHintedHandoff(t *testing.T, newNode NodeFactory) {
	ctx := context.Background()
	tc := buildCluster(t, newNode, 3, cluster.Options{ReadQuorum: 2, WriteQuorum: 2})

	victim := 2
	tc.sw[victim].SetDown(true)

	const keys = 8
	for i := 0; i < keys; i++ {
		if err := tc.c.Put(ctx, fmt.Sprintf("h%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("degraded Put h%d: %v", i, err)
		}
	}
	if tc.c.PendingHints() == 0 {
		t.Fatal("writes missed a down replica but no hints were queued")
	}
	if _, ok := nodeRecord(t, tc.raw[victim], "h0"); ok {
		// Down means down: nothing may have reached the victim's store.
		t.Fatal("down node received a write")
	}

	tc.sw[victim].SetDown(false)
	remaining, err := tc.c.FlushHints(ctx)
	if err != nil {
		t.Fatalf("FlushHints: %v", err)
	}
	if remaining != 0 {
		t.Fatalf("FlushHints left %d hints pending with every node up", remaining)
	}

	// The recovered node must now hold every record it missed, bit-perfect.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("h%d", i)
		rec, ok := nodeRecord(t, tc.raw[victim], key)
		if !ok {
			t.Fatalf("hint for %q never drained to the recovered node", key)
		}
		if string(rec.Value) != fmt.Sprintf("v%d", i) || rec.Tombstone {
			t.Fatalf("drained record for %q = %q (tomb=%v), want v%d", key, rec.Value, rec.Tombstone, i)
		}
	}
	if st := tc.c.Stats(); st.HintsQueued == 0 || st.HintsReplayed == 0 {
		t.Fatalf("hint counters did not move: %+v", st)
	}
}

// clusterReadRepair: a replica holding a stale version is converged by the
// read path — asserted by inspecting the replica directly afterwards.
func clusterReadRepair(t *testing.T, newNode NodeFactory) {
	ctx := context.Background()
	tc := buildCluster(t, newNode, 3, cluster.Options{ReadQuorum: 2, WriteQuorum: 2})

	if err := tc.c.Put(ctx, "rr", []byte("current")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	cur, ok := nodeRecord(t, tc.raw[0], "rr")
	if !ok {
		t.Fatal("replica 0 missing the record after a full write")
	}

	// Corrupt one replica back in time: an older version with a stale value,
	// planted directly on the node (as if it had missed the newest write).
	stale := cluster.Record{Version: cur.Version - 1, Value: []byte("stale")}
	victim := 1
	if err := tc.raw[victim].Put(ctx, "rr", stale.Encode()); err != nil {
		t.Fatalf("planting stale replica: %v", err)
	}

	v, err := tc.c.Get(ctx, "rr")
	if err != nil || string(v) != "current" {
		t.Fatalf("Get over divergent replicas = %q, %v, want current", v, err)
	}

	// The read must have repaired the stale replica in place.
	rec, ok := nodeRecord(t, tc.raw[victim], "rr")
	if !ok {
		t.Fatal("stale replica vanished instead of being repaired")
	}
	if rec.Version != cur.Version || string(rec.Value) != "current" {
		t.Fatalf("replica after read repair = version %d value %q, want version %d value current",
			rec.Version, rec.Value, cur.Version)
	}
	if st := tc.c.Stats(); st.ReadRepairs == 0 {
		t.Fatal("Stats recorded no read repairs")
	}
}

// clusterMembership: join and leave rebalance live, under concurrent reads,
// without losing a key. Afterward every key is fully replicated on the new
// membership and the departed node holds nothing.
func clusterMembership(t *testing.T, newNode NodeFactory) {
	ctx := context.Background()
	tc := buildCluster(t, newNode, 3, cluster.Options{ReadQuorum: 2, WriteQuorum: 2})

	const staticKeys = 40
	want := make(map[string]string, staticKeys)
	for i := 0; i < staticKeys; i++ {
		k, v := fmt.Sprintf("m%d", i), fmt.Sprintf("val%d", i)
		want[k] = v
		if err := tc.c.Put(ctx, k, []byte(v)); err != nil {
			t.Fatalf("preload %s: %v", k, err)
		}
	}

	// Continuous reads while membership changes underneath.
	var stop atomic.Bool
	var readErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for !stop.Load() {
				k := fmt.Sprintf("m%d", i%staticKeys)
				v, err := tc.c.Get(ctx, k)
				if err != nil || string(v) != want[k] {
					readErr.Store(fmt.Errorf("mid-rebalance Get(%s) = %q, %v, want %q", k, v, err, want[k]))
					return
				}
				i++
			}
		}(w)
	}

	// Join a fresh node, then retire one of the originals.
	joinInner, cleanup := newNode(t, "node3")
	t.Cleanup(cleanup)
	joinSw := faulty.New(joinInner, faulty.Options{})
	if err := tc.c.Join(ctx, cluster.Node{ID: "node3", Store: joinSw}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	departed := 0
	if err := tc.c.Leave(ctx, tc.ids[departed]); err != nil {
		t.Fatalf("Leave: %v", err)
	}

	stop.Store(true)
	wg.Wait()
	if err := readErr.Load(); err != nil {
		t.Fatal(err)
	}

	// No key lost: every value still reads back, and Len agrees.
	for k, v := range want {
		got, err := tc.c.Get(ctx, k)
		if err != nil || string(got) != v {
			t.Fatalf("after rebalance Get(%s) = %q, %v, want %q", k, got, err, v)
		}
	}
	if n, err := tc.c.Len(ctx); err != nil || n != staticKeys {
		t.Fatalf("after rebalance Len = %d, %v, want %d", n, err, staticKeys)
	}

	// Replication is restored on the new membership: every key lives on at
	// least W current nodes (checked directly), and the departed node was
	// drained empty.
	members := []kv.Store{tc.raw[1], tc.raw[2], joinInner}
	for k := range want {
		copies := 0
		for _, m := range members {
			if _, ok := nodeRecord(t, m, k); ok {
				copies++
			}
		}
		if copies < 2 {
			t.Fatalf("key %s has %d copies on the new membership, want >= 2", k, copies)
		}
	}
	if n, err := tc.raw[departed].Len(ctx); err != nil || n != 0 {
		t.Fatalf("departed node still holds %d records (err %v), want 0", n, err)
	}

	if st := tc.c.Stats(); st.Rebalances < 2 || st.KeysMoved == 0 {
		t.Fatalf("rebalance counters did not move: %+v", st)
	}
}
