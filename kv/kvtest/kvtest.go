// Package kvtest provides a conformance test suite for kv.Store
// implementations. Every store in this repository (in-memory, file system,
// miniredis, minisql, cloudsim, and the DSCL caching client) runs the same
// suite, so contract drift between stores is caught mechanically.
package kvtest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"edsc/kv"
)

// Factory creates a fresh, empty store for one subtest. The returned cleanup
// function (may be nil) runs after the subtest finishes; the suite also calls
// Close on the store itself.
type Factory func(t *testing.T) (kv.Store, func())

// Options tune the suite for slow or size-limited stores.
type Options struct {
	// MaxValue bounds the largest value used (default 1 MiB).
	MaxValue int
	// SkipConcurrency disables the concurrent-access test (for stores
	// whose test fixture cannot afford it).
	SkipConcurrency bool
	// SkipContext disables the context-cancellation test, for stores that
	// legitimately cannot observe cancellation (none in this repository —
	// the escape hatch exists for out-of-tree implementations).
	SkipContext bool
	// QuickChecks is the number of property-test iterations (default 40).
	QuickChecks int
}

// Run executes the full conformance suite against stores built by f.
func Run(t *testing.T, f Factory, opts Options) {
	if opts.MaxValue == 0 {
		opts.MaxValue = 1 << 20
	}
	if opts.QuickChecks == 0 {
		opts.QuickChecks = 40
	}
	t.Run("PutGet", func(t *testing.T) { testPutGet(t, f) })
	t.Run("GetMissing", func(t *testing.T) { testGetMissing(t, f) })
	t.Run("Overwrite", func(t *testing.T) { testOverwrite(t, f) })
	t.Run("Delete", func(t *testing.T) { testDelete(t, f) })
	t.Run("DeleteMissing", func(t *testing.T) { testDeleteMissing(t, f) })
	t.Run("Contains", func(t *testing.T) { testContains(t, f) })
	t.Run("EmptyKey", func(t *testing.T) { testEmptyKey(t, f) })
	t.Run("EmptyValue", func(t *testing.T) { testEmptyValue(t, f) })
	t.Run("BinaryValue", func(t *testing.T) { testBinaryValue(t, f) })
	t.Run("AwkwardKeys", func(t *testing.T) { testAwkwardKeys(t, f) })
	t.Run("LargeValue", func(t *testing.T) { testLargeValue(t, f, opts.MaxValue) })
	t.Run("KeysAndLen", func(t *testing.T) { testKeysAndLen(t, f) })
	t.Run("Clear", func(t *testing.T) { testClear(t, f) })
	t.Run("ValueAliasing", func(t *testing.T) { testValueAliasing(t, f) })
	t.Run("Closed", func(t *testing.T) { testClosed(t, f) })
	if !opts.SkipContext {
		t.Run("ContextCancel", func(t *testing.T) { testContextCancel(t, f) })
	}
	t.Run("PropertyRoundTrip", func(t *testing.T) { testPropertyRoundTrip(t, f, opts.QuickChecks) })
	t.Run("ModelCheck", func(t *testing.T) { testModelCheck(t, f) })
	if !opts.SkipConcurrency {
		t.Run("Concurrent", func(t *testing.T) { testConcurrent(t, f) })
	}
}

func open(t *testing.T, f Factory) kv.Store {
	t.Helper()
	s, cleanup := f(t)
	t.Cleanup(func() {
		_ = s.Close()
		if cleanup != nil {
			cleanup()
		}
	})
	return s
}

func mustPut(t *testing.T, s kv.Store, key string, val []byte) {
	t.Helper()
	if err := s.Put(context.Background(), key, val); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func mustGet(t *testing.T, s kv.Store, key string) []byte {
	t.Helper()
	v, err := s.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	return v
}

func testPutGet(t *testing.T, f Factory) {
	s := open(t, f)
	mustPut(t, s, "alpha", []byte("one"))
	if got := mustGet(t, s, "alpha"); !bytes.Equal(got, []byte("one")) {
		t.Fatalf("Get = %q, want %q", got, "one")
	}
}

func testGetMissing(t *testing.T, f Factory) {
	s := open(t, f)
	if _, err := s.Get(context.Background(), "nope"); !kv.IsNotFound(err) {
		t.Fatalf("Get missing: err = %v, want ErrNotFound", err)
	}
}

func testOverwrite(t *testing.T, f Factory) {
	s := open(t, f)
	mustPut(t, s, "k", []byte("v1"))
	mustPut(t, s, "k", []byte("v2"))
	if got := mustGet(t, s, "k"); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("after overwrite Get = %q, want %q", got, "v2")
	}
	if n, err := s.Len(context.Background()); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1, nil", n, err)
	}
}

func testDelete(t *testing.T, f Factory) {
	s := open(t, f)
	mustPut(t, s, "k", []byte("v"))
	if err := s.Delete(context.Background(), "k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(context.Background(), "k"); !kv.IsNotFound(err) {
		t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
	}
}

func testDeleteMissing(t *testing.T, f Factory) {
	s := open(t, f)
	if err := s.Delete(context.Background(), "ghost"); !kv.IsNotFound(err) {
		t.Fatalf("Delete missing: err = %v, want ErrNotFound", err)
	}
}

func testContains(t *testing.T, f Factory) {
	s := open(t, f)
	mustPut(t, s, "present", []byte("x"))
	ok, err := s.Contains(context.Background(), "present")
	if err != nil || !ok {
		t.Fatalf("Contains(present) = %v, %v; want true, nil", ok, err)
	}
	ok, err = s.Contains(context.Background(), "absent")
	if err != nil || ok {
		t.Fatalf("Contains(absent) = %v, %v; want false, nil", ok, err)
	}
}

func testEmptyKey(t *testing.T, f Factory) {
	s := open(t, f)
	ctx := context.Background()
	if err := s.Put(ctx, "", []byte("v")); err == nil {
		t.Fatal("Put with empty key succeeded, want error")
	}
	if _, err := s.Get(ctx, ""); err == nil {
		t.Fatal("Get with empty key succeeded, want error")
	}
	if err := s.Delete(ctx, ""); err == nil {
		t.Fatal("Delete with empty key succeeded, want error")
	}
}

func testEmptyValue(t *testing.T, f Factory) {
	s := open(t, f)
	mustPut(t, s, "empty", nil)
	got := mustGet(t, s, "empty")
	if len(got) != 0 {
		t.Fatalf("Get(empty) = %q, want empty", got)
	}
	ok, err := s.Contains(context.Background(), "empty")
	if err != nil || !ok {
		t.Fatalf("Contains(empty-valued key) = %v, %v; want true", ok, err)
	}
}

func testBinaryValue(t *testing.T, f Factory) {
	s := open(t, f)
	val := make([]byte, 256)
	for i := range val {
		val[i] = byte(i)
	}
	mustPut(t, s, "bin", val)
	if got := mustGet(t, s, "bin"); !bytes.Equal(got, val) {
		t.Fatalf("binary value corrupted: got %d bytes", len(got))
	}
}

func testAwkwardKeys(t *testing.T, f Factory) {
	s := open(t, f)
	keys := []string{
		"with space", "with/slash", "with\\backslash", "with.dot",
		"UPPER", "upper", "ключ", "日本語", "a%2Fb", "..", "trailing.",
		"very:long:" + string(bytes.Repeat([]byte("x"), 100)),
	}
	for i, k := range keys {
		mustPut(t, s, k, []byte{byte(i)})
	}
	for i, k := range keys {
		if got := mustGet(t, s, k); !bytes.Equal(got, []byte{byte(i)}) {
			t.Fatalf("key %q: got %v, want %v", k, got, []byte{byte(i)})
		}
	}
	n, err := s.Len(context.Background())
	if err != nil || n != len(keys) {
		t.Fatalf("Len = %d, %v; want %d (keys must not collide)", n, err, len(keys))
	}
}

func testLargeValue(t *testing.T, f Factory, max int) {
	s := open(t, f)
	rng := rand.New(rand.NewSource(7))
	val := make([]byte, max)
	rng.Read(val)
	mustPut(t, s, "large", val)
	if got := mustGet(t, s, "large"); !bytes.Equal(got, val) {
		t.Fatalf("large value corrupted (%d bytes)", len(got))
	}
}

func testKeysAndLen(t *testing.T, f Factory) {
	s := open(t, f)
	want := []string{"a", "b", "c", "d"}
	for _, k := range want {
		mustPut(t, s, k, []byte(k))
	}
	got, err := s.Keys(context.Background())
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	if n, _ := s.Len(context.Background()); n != len(want) {
		t.Fatalf("Len = %d, want %d", n, len(want))
	}
}

func testClear(t *testing.T, f Factory) {
	s := open(t, f)
	for i := 0; i < 10; i++ {
		mustPut(t, s, fmt.Sprintf("k%d", i), []byte("v"))
	}
	if err := s.Clear(context.Background()); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if n, _ := s.Len(context.Background()); n != 0 {
		t.Fatalf("Len after Clear = %d, want 0", n)
	}
	if _, err := s.Get(context.Background(), "k3"); !kv.IsNotFound(err) {
		t.Fatalf("Get after Clear: err = %v, want ErrNotFound", err)
	}
}

func testValueAliasing(t *testing.T, f Factory) {
	s := open(t, f)
	buf := []byte("original")
	mustPut(t, s, "k", buf)
	copy(buf, "XXXXXXXX") // caller mutates its slice after Put
	if got := mustGet(t, s, "k"); !bytes.Equal(got, []byte("original")) {
		t.Fatalf("store aliased caller's Put slice: got %q", got)
	}
	got := mustGet(t, s, "k")
	if len(got) > 0 {
		got[0] = 'Z' // caller mutates the returned slice
	}
	if again := mustGet(t, s, "k"); !bytes.Equal(again, []byte("original")) {
		t.Fatalf("store aliased Get result: got %q", again)
	}
}

// testContextCancel verifies that an already-cancelled context is honoured
// promptly — point ops (Get/Put/Delete) and collection ops (Keys/Len/Clear)
// all return ctx.Err() (possibly wrapped) — and that rejected mutations left
// no trace.
func testContextCancel(t *testing.T, f Factory) {
	s := open(t, f)
	mustPut(t, s, "k", []byte("keep"))
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Get(cctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if err := s.Put(cctx, "k", []byte("clobber")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Put with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if err := s.Delete(cctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Delete with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := s.Keys(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Keys with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := s.Len(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Len with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if err := s.Clear(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Clear with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The cancelled Put, Delete, and Clear must not have touched the store.
	if got := mustGet(t, s, "k"); !bytes.Equal(got, []byte("keep")) {
		t.Fatalf("cancelled write changed the value: %q", got)
	}
	if n, err := s.Len(context.Background()); err != nil || n != 1 {
		t.Fatalf("Len after cancelled Clear = %d, %v; want 1, nil", n, err)
	}
}

func testClosed(t *testing.T, f Factory) {
	s, cleanup := f(t)
	if cleanup != nil {
		defer cleanup()
	}
	mustPut(t, s, "k", []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Get(context.Background(), "k"); err == nil {
		t.Fatal("Get after Close succeeded, want error")
	}
	if err := s.Put(context.Background(), "k", []byte("v")); err == nil {
		t.Fatal("Put after Close succeeded, want error")
	}
}

// testPropertyRoundTrip is a testing/quick property: for random key/value
// pairs, Put then Get returns the same bytes.
func testPropertyRoundTrip(t *testing.T, f Factory, checks int) {
	s := open(t, f)
	ctx := context.Background()
	prop := func(rawKey []byte, val []byte) bool {
		key := fmt.Sprintf("q-%x", rawKey) // ensure non-empty, printable
		if err := s.Put(ctx, key, val); err != nil {
			t.Logf("Put(%q): %v", key, err)
			return false
		}
		got, err := s.Get(ctx, key)
		if err != nil {
			t.Logf("Get(%q): %v", key, err)
			return false
		}
		return bytes.Equal(got, val)
	}
	cfg := &quick.Config{MaxCount: checks, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// testModelCheck drives the store with a random operation sequence and
// compares every observation against a plain map model.
func testModelCheck(t *testing.T, f Factory) {
	s := open(t, f)
	ctx := context.Background()
	model := map[string]string{}
	rng := rand.New(rand.NewSource(42))
	keys := []string{"a", "b", "c", "d", "e", "f"}

	for step := 0; step < 400; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(5) {
		case 0, 1: // put
			v := fmt.Sprintf("v%d", rng.Intn(1000))
			if err := s.Put(ctx, k, []byte(v)); err != nil {
				t.Fatalf("step %d Put: %v", step, err)
			}
			model[k] = v
		case 2: // get
			got, err := s.Get(ctx, k)
			want, ok := model[k]
			if ok {
				if err != nil || string(got) != want {
					t.Fatalf("step %d Get(%q) = %q, %v; want %q", step, k, got, err, want)
				}
			} else if !kv.IsNotFound(err) {
				t.Fatalf("step %d Get(%q) err = %v, want ErrNotFound", step, k, err)
			}
		case 3: // delete
			err := s.Delete(ctx, k)
			if _, ok := model[k]; ok {
				if err != nil {
					t.Fatalf("step %d Delete(%q): %v", step, k, err)
				}
				delete(model, k)
			} else if !kv.IsNotFound(err) {
				t.Fatalf("step %d Delete(%q) err = %v, want ErrNotFound", step, k, err)
			}
		case 4: // len
			n, err := s.Len(ctx)
			if err != nil || n != len(model) {
				t.Fatalf("step %d Len = %d, %v; want %d", step, n, err, len(model))
			}
		}
	}
}

func testConcurrent(t *testing.T, f Factory) {
	s := open(t, f)
	ctx := context.Background()
	const workers = 8
	const opsPer = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%10)
				val := []byte(fmt.Sprintf("v%d", i))
				if err := s.Put(ctx, key, val); err != nil {
					errs <- fmt.Errorf("worker %d Put: %w", w, err)
					return
				}
				if _, err := s.Get(ctx, key); err != nil {
					errs <- fmt.Errorf("worker %d Get: %w", w, err)
					return
				}
				if i%7 == 0 {
					if err := s.Delete(ctx, key); err != nil && !kv.IsNotFound(err) {
						errs <- fmt.Errorf("worker %d Delete: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
