package kvtest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"edsc/kv"
)

// RunCompareAndPut exercises the kv.CompareAndPut contract: NoVersion means
// create-only, a lost race returns kv.ErrVersionMismatch, and a successful
// CAS returns the new version. The store under test must implement
// kv.CompareAndPut.
func RunCompareAndPut(t *testing.T, f Factory) {
	t.Run("CreateOnly", func(t *testing.T) {
		s := open(t, f)
		cs := requireCAS(t, s)
		ctx := context.Background()
		v1, err := cs.PutIfVersion(ctx, "k", []byte("first"), kv.NoVersion)
		if err != nil || v1 == kv.NoVersion {
			t.Fatalf("create = %q, %v; want a fresh version", v1, err)
		}
		// A second create-only write on an existing key loses.
		if _, err := cs.PutIfVersion(ctx, "k", []byte("second"), kv.NoVersion); !errors.Is(err, kv.ErrVersionMismatch) {
			t.Fatalf("create over existing: err = %v, want ErrVersionMismatch", err)
		}
		if got := mustGet(t, s, "k"); !bytes.Equal(got, []byte("first")) {
			t.Fatalf("lost create clobbered the value: %q", got)
		}
	})
	t.Run("SuccessfulCAS", func(t *testing.T) {
		s := open(t, f)
		cs := requireCAS(t, s)
		ctx := context.Background()
		v1, err := cs.PutIfVersion(ctx, "k", []byte("one"), kv.NoVersion)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := cs.PutIfVersion(ctx, "k", []byte("two"), v1)
		if err != nil || v2 == kv.NoVersion || v2 == v1 {
			t.Fatalf("CAS = %q, %v; want a new version distinct from %q", v2, err, v1)
		}
		if got := mustGet(t, s, "k"); !bytes.Equal(got, []byte("two")) {
			t.Fatalf("Get after CAS = %q, want %q", got, "two")
		}
	})
	t.Run("LostRace", func(t *testing.T) {
		s := open(t, f)
		cs := requireCAS(t, s)
		ctx := context.Background()
		v1, err := cs.PutIfVersion(ctx, "k", []byte("one"), kv.NoVersion)
		if err != nil {
			t.Fatal(err)
		}
		// Another writer moves the value on; the stale version must lose.
		if _, err := cs.PutIfVersion(ctx, "k", []byte("two"), v1); err != nil {
			t.Fatal(err)
		}
		if _, err := cs.PutIfVersion(ctx, "k", []byte("stale"), v1); !errors.Is(err, kv.ErrVersionMismatch) {
			t.Fatalf("stale CAS err = %v, want ErrVersionMismatch", err)
		}
		if got := mustGet(t, s, "k"); !bytes.Equal(got, []byte("two")) {
			t.Fatalf("lost race clobbered the value: %q", got)
		}
	})
	t.Run("MissingKeyWithVersion", func(t *testing.T) {
		s := open(t, f)
		cs := requireCAS(t, s)
		if _, err := cs.PutIfVersion(context.Background(), "ghost", []byte("v"), kv.Version("bogus")); !errors.Is(err, kv.ErrVersionMismatch) {
			t.Fatalf("CAS on missing key err = %v, want ErrVersionMismatch", err)
		}
	})
	t.Run("ConcurrentSingleWinner", func(t *testing.T) {
		s := open(t, f)
		cs := requireCAS(t, s)
		ctx := context.Background()
		base, err := cs.PutIfVersion(ctx, "counter", []byte("0"), kv.NoVersion)
		if err != nil {
			t.Fatal(err)
		}
		// Many goroutines race one CAS each from the same base version:
		// exactly one may win.
		const racers = 8
		var wg sync.WaitGroup
		wins := make(chan int, racers)
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := cs.PutIfVersion(ctx, "counter", []byte(fmt.Sprintf("%d", i)), base)
				switch {
				case err == nil:
					wins <- i
				case errors.Is(err, kv.ErrVersionMismatch):
				default:
					t.Errorf("racer %d: unexpected error %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		close(wins)
		var winners []int
		for w := range wins {
			winners = append(winners, w)
		}
		if len(winners) != 1 {
			t.Fatalf("%d racers won, want exactly 1 (winners %v)", len(winners), winners)
		}
		if got := mustGet(t, s, "counter"); string(got) != fmt.Sprintf("%d", winners[0]) {
			t.Fatalf("value %q does not match winner %d", got, winners[0])
		}
	})
}

func requireCAS(t *testing.T, s kv.Store) kv.CompareAndPut {
	t.Helper()
	cs, ok := kv.As[kv.CompareAndPut](s)
	if !ok {
		t.Fatalf("store %T does not provide kv.CompareAndPut", s)
	}
	return cs
}
