package kvtest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"edsc/kv"
	"edsc/kv/faulty"
	"edsc/kv/resilient"
)

// ChaosOptions tune the chaos conformance suite. The zero value picks
// moderate defaults; setting the EDSC_CHAOS environment variable to
// "aggressive" (the `make chaos` configuration) raises fault rates and
// iteration counts for every caller at once.
type ChaosOptions struct {
	// Workers is the number of concurrent clients, each owning a disjoint
	// key space (default 4). Stores whose fixtures cannot take concurrent
	// traffic should set 1.
	Workers int
	// OpsPerWorker is the operation count per worker (default 150).
	OpsPerWorker int
	// KeysPerWorker is each worker's key-space size (default 5).
	KeysPerWorker int
	// Seed drives both the fault injection and the operation mix.
	Seed int64
	// ErrBefore, ErrAfter, PSpike override the injected fault rates
	// (defaults 0.15, 0.10, 0.05).
	ErrBefore, ErrAfter, PSpike float64
}

// RunChaos is the chaos conformance suite: it sandwiches the store under
// test between a fault injector below (kv/faulty with before-apply errors,
// lost-ack after-apply errors, and latency spikes) and the resilience
// wrapper above (kv/resilient with retries, hedged reads, write retries
// opted in), then drives concurrent per-key workloads and checks every
// observation against a per-key possibility model.
//
// The model is exact for this workload: each worker owns its keys, so
// operations on a key are sequential, and an ambiguous failure (an error
// from a write that may have applied) simply widens the set of values the
// next read may legally return. Any observation outside that set is a
// linearizability violation — a real bug in the store, the injector, or
// the retry policy. Torn writes and stale reads are deliberately not
// injected here: no retry policy can mask them (kv/faulty's own tests
// cover their observability).
//
// When the wrapped store implements kv.Batch the workload also issues
// multi-key reads and writes. A successful GetMulti is a simultaneous
// observation of every requested key (present keys collapse to the
// returned value, missing keys to absent); a failed one only constrains
// the keys whose values it actually returned. A failed PutMulti is
// ambiguous per key — the resilience layer may have split the batch, so
// each key independently may or may not hold its new value.
func RunChaos(t *testing.T, f Factory, opts ChaosOptions) {
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.OpsPerWorker == 0 {
		opts.OpsPerWorker = 150
	}
	if opts.KeysPerWorker == 0 {
		opts.KeysPerWorker = 5
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.ErrBefore == 0 {
		opts.ErrBefore = 0.15
	}
	if opts.ErrAfter == 0 {
		opts.ErrAfter = 0.10
	}
	if opts.PSpike == 0 {
		opts.PSpike = 0.05
	}
	retries := 12
	if os.Getenv("EDSC_CHAOS") == "aggressive" {
		opts.OpsPerWorker *= 4
		opts.ErrBefore = 0.30
		opts.ErrAfter = 0.20
		opts.PSpike = 0.10
		retries = 20
	}

	t.Run("Chaos", func(t *testing.T) {
		inner := open(t, f)
		inj := faulty.New(inner, faulty.Options{
			Seed:      opts.Seed,
			ErrBefore: opts.ErrBefore,
			ErrAfter:  opts.ErrAfter,
			PSpike:    opts.PSpike,
			Spike:     200 * time.Microsecond,
		})
		res := resilient.New(inj, resilient.Options{
			RetryWrites: true,
			MaxRetries:  retries,
			BaseBackoff: 100 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
			HedgeDelay:  time.Millisecond,
			Seed:        opts.Seed,
		})

		var wg sync.WaitGroup
		errs := make(chan error, opts.Workers)
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if err := chaosWorker(res, w, opts); err != nil {
					errs <- err
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}
		if inj.Stats().Injected() == 0 {
			t.Fatal("chaos run injected no faults — the suite tested nothing")
		}
		if st := res.Stats(); st.Retries == 0 {
			t.Fatalf("faults were injected but nothing was retried: %+v", st)
		}
	})
}

// keyState is the set of values a key may legally hold, given the writes
// issued and which of them failed ambiguously.
type keyState struct {
	vals   map[string]bool // possible present values
	absent bool            // whether "absent" is possible
}

func newKeyState() *keyState {
	return &keyState{vals: make(map[string]bool), absent: true}
}

// chaosWorker drives one key space and checks every observation.
func chaosWorker(s kv.Store, w int, opts ChaosOptions) error {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
	states := make(map[string]*keyState, opts.KeysPerWorker)
	for i := 0; i < opts.KeysPerWorker; i++ {
		states[fmt.Sprintf("chaos-w%d-k%d", w, i)] = newKeyState()
	}
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}

	bs, hasBatch := kv.As[kv.Batch](s)

	for op := 0; op < opts.OpsPerWorker; op++ {
		draw := rng.Float64()
		if !hasBatch {
			// Map the batch share of the distribution back onto the
			// single-key operations.
			draw *= 0.82
		}
		k := keys[rng.Intn(len(keys))]
		st := states[k]
		switch {
		case draw < 0.40: // put
			v := fmt.Sprintf("w%d-op%d", w, op)
			err := s.Put(ctx, k, []byte(v))
			switch {
			case err == nil:
				st.vals = map[string]bool{v: true}
				st.absent = false
			case errors.Is(err, faulty.ErrInjected):
				// Ambiguous: the write may or may not have applied.
				st.vals[v] = true
			default:
				return fmt.Errorf("worker %d op %d: Put(%q): %v", w, op, k, err)
			}

		case draw < 0.62: // get
			v, err := s.Get(ctx, k)
			switch {
			case err == nil:
				if !st.vals[string(v)] {
					return fmt.Errorf("worker %d op %d: Get(%q) = %q, not in possible set %v",
						w, op, k, v, possibleList(st))
				}
				st.vals = map[string]bool{string(v): true}
				st.absent = false
			case kv.IsNotFound(err):
				if !st.absent {
					return fmt.Errorf("worker %d op %d: Get(%q) = NotFound, but key cannot be absent (possible %v)",
						w, op, k, possibleList(st))
				}
				st.vals = map[string]bool{}
				st.absent = true
			case errors.Is(err, faulty.ErrInjected):
				// Retries exhausted; the read observed nothing.
			default:
				return fmt.Errorf("worker %d op %d: Get(%q): %v", w, op, k, err)
			}

		case draw < 0.74: // delete
			err := s.Delete(ctx, k)
			switch {
			case err == nil:
				// Deleted now, or found already deleted after a transient
				// failure — either way the key ends absent.
				st.vals = map[string]bool{}
				st.absent = true
			case kv.IsNotFound(err):
				if !st.absent {
					return fmt.Errorf("worker %d op %d: Delete(%q) = NotFound, but key cannot be absent (possible %v)",
						w, op, k, possibleList(st))
				}
				st.vals = map[string]bool{}
				st.absent = true
			case errors.Is(err, faulty.ErrInjected):
				// Ambiguous: the delete may have applied.
				st.absent = true
			default:
				return fmt.Errorf("worker %d op %d: Delete(%q): %v", w, op, k, err)
			}

		case draw < 0.82: // contains
			ok, err := s.Contains(ctx, k)
			switch {
			case err == nil && ok:
				if len(st.vals) == 0 {
					return fmt.Errorf("worker %d op %d: Contains(%q) = true, but key must be absent", w, op, k)
				}
				st.absent = false
			case err == nil && !ok:
				if !st.absent {
					return fmt.Errorf("worker %d op %d: Contains(%q) = false, but key cannot be absent (possible %v)",
						w, op, k, possibleList(st))
				}
				st.vals = map[string]bool{}
				st.absent = true
			case errors.Is(err, faulty.ErrInjected):
			default:
				return fmt.Errorf("worker %d op %d: Contains(%q): %v", w, op, k, err)
			}

		case draw < 0.91: // getmulti
			ks := sampleKeys(rng, keys, 1+rng.Intn(len(keys)))
			m, err := bs.GetMulti(ctx, ks)
			switch {
			case err == nil:
				// One simultaneous observation of every requested key.
				for _, bk := range ks {
					bst := states[bk]
					if v, ok := m[bk]; ok {
						if !bst.vals[string(v)] {
							return fmt.Errorf("worker %d op %d: GetMulti(%q) = %q, not in possible set %v",
								w, op, bk, v, possibleList(bst))
						}
						bst.vals = map[string]bool{string(v): true}
						bst.absent = false
					} else {
						if !bst.absent {
							return fmt.Errorf("worker %d op %d: GetMulti omitted %q, but key cannot be absent (possible %v)",
								w, op, bk, possibleList(bst))
						}
						bst.vals = map[string]bool{}
						bst.absent = true
					}
				}
			case errors.Is(err, faulty.ErrInjected):
				// Retries exhausted. Any values the partial result does carry
				// are still real observations; keys it omits told us nothing
				// (unread vs. read-and-absent is indistinguishable here).
				for _, bk := range ks {
					v, ok := m[bk]
					if !ok {
						continue
					}
					bst := states[bk]
					if !bst.vals[string(v)] {
						return fmt.Errorf("worker %d op %d: partial GetMulti(%q) = %q, not in possible set %v",
							w, op, bk, v, possibleList(bst))
					}
					bst.vals = map[string]bool{string(v): true}
					bst.absent = false
				}
			default:
				return fmt.Errorf("worker %d op %d: GetMulti(%v): %v", w, op, ks, err)
			}

		default: // putmulti
			ks := sampleKeys(rng, keys, 1+rng.Intn(len(keys)))
			pairs := make(map[string][]byte, len(ks))
			for _, bk := range ks {
				pairs[bk] = []byte(fmt.Sprintf("w%d-op%d-%s", w, op, bk))
			}
			err := bs.PutMulti(ctx, pairs)
			switch {
			case err == nil:
				for bk, v := range pairs {
					states[bk].vals = map[string]bool{string(v): true}
					states[bk].absent = false
				}
			case errors.Is(err, faulty.ErrInjected):
				// Ambiguous per key: the resilience layer may have split the
				// batch, so each write independently may or may not have
				// applied.
				for bk, v := range pairs {
					states[bk].vals[string(v)] = true
				}
			default:
				return fmt.Errorf("worker %d op %d: PutMulti(%v): %v", w, op, ks, err)
			}
		}
	}

	// Final sweep: every key must still be explainable.
	for _, k := range keys {
		st := states[k]
		v, err := s.Get(ctx, k)
		switch {
		case err == nil:
			if !st.vals[string(v)] {
				return fmt.Errorf("worker %d final: Get(%q) = %q, not in possible set %v", w, k, v, possibleList(st))
			}
		case kv.IsNotFound(err):
			if !st.absent {
				return fmt.Errorf("worker %d final: Get(%q) = NotFound, but key cannot be absent (possible %v)",
					w, k, possibleList(st))
			}
		case errors.Is(err, faulty.ErrInjected):
		default:
			return fmt.Errorf("worker %d final: Get(%q): %v", w, k, err)
		}
	}
	return nil
}

// sampleKeys draws n distinct keys from the worker's key space.
func sampleKeys(rng *rand.Rand, keys []string, n int) []string {
	if n > len(keys) {
		n = len(keys)
	}
	out := make([]string, n)
	for i, j := range rng.Perm(len(keys))[:n] {
		out[i] = keys[j]
	}
	return out
}

// possibleList renders a key's possibility set for error messages.
func possibleList(st *keyState) []string {
	var out []string
	for v := range st.vals {
		out = append(out, v)
	}
	if st.absent {
		out = append(out, "<absent>")
	}
	return out
}
