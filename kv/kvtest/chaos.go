package kvtest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edsc/kv"
	"edsc/kv/faulty"
	"edsc/kv/resilient"
)

// ChaosOptions tune the chaos conformance suite. The zero value picks
// moderate defaults; setting the EDSC_CHAOS environment variable to
// "aggressive" (the `make chaos` configuration) raises fault rates and
// iteration counts for every caller at once.
type ChaosOptions struct {
	// Workers is the number of concurrent clients, each owning a disjoint
	// key space (default 4). Stores whose fixtures cannot take concurrent
	// traffic should set 1.
	Workers int
	// OpsPerWorker is the operation count per worker (default 150).
	OpsPerWorker int
	// KeysPerWorker is each worker's key-space size (default 5).
	KeysPerWorker int
	// Seed drives both the fault injection and the operation mix.
	Seed int64
	// ErrBefore, ErrAfter, PSpike override the injected fault rates
	// (defaults 0.15, 0.10, 0.05). Ignored under NodeKiller, where whole-node
	// kills are the fault model.
	ErrBefore, ErrAfter, PSpike float64

	// NodeKiller switches the suite to whole-node fault mode: instead of
	// sandwiching the store in a per-operation fault injector, a background
	// goroutine kills and restores entire backend nodes mid-workload. The
	// store under test (a kv/cluster over faulty-wrapped nodes) is expected
	// to keep answering through the kills; the possibility model switches to
	// delayed-visibility semantics (see keyState) because a replicated store
	// may legally surface a previously-failed write later via read repair.
	NodeKiller *NodeKiller
	// AmbiguousErrs extends the set of errors the model treats as "the
	// operation failed but may have (partially) applied". faulty.ErrInjected
	// and kv.ErrAmbiguous are always included; cluster tests add their
	// quorum sentinel so reads that die mid-kill are recognized.
	AmbiguousErrs []error
	// PostCheck, when set, runs after the workload and final sweep with the
	// store still open — the hook for cluster tests to flush hints and
	// assert per-node convergence.
	PostCheck func(t *testing.T, s kv.Store)
}

// NodeSwitch is the kill switch one chaos-controlled node exposes;
// *faulty.Store implements it (SetDown fails every operation with
// ErrInjected while down, preserving the node's data — a crash, not a wipe).
type NodeSwitch interface{ SetDown(bool) }

// NodeKiller kills and restores whole nodes on a seeded schedule. At most
// one node is down at a time, so a cluster with R=W=2, N=3 always keeps
// quorum — every violation the model then finds is a real consistency bug,
// not an artifact of an impossible configuration.
type NodeKiller struct {
	// Nodes are the kill switches, one per backend node.
	Nodes []NodeSwitch
	// DownTime is how long a killed node stays dead (default 600µs — a few
	// hundred in-memory quorum operations).
	DownTime time.Duration
	// UpTime is the all-nodes-healthy gap between kills (default 300µs).
	UpTime time.Duration

	kills atomic.Int64
}

// Kills reports how many node kills the killer has performed.
func (k *NodeKiller) Kills() int64 { return k.kills.Load() }

// start launches the kill loop. The returned stop function halts it,
// restores every node, and blocks until the loop has exited.
func (k *NodeKiller) start(seed int64) (stop func()) {
	if k.DownTime <= 0 {
		k.DownTime = 600 * time.Microsecond
	}
	if k.UpTime <= 0 {
		k.UpTime = 300 * time.Microsecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		rng := rand.New(rand.NewSource(seed ^ 0x6b696c6c65720a))
		for {
			select {
			case <-done:
				return
			default:
			}
			i := rng.Intn(len(k.Nodes))
			k.Nodes[i].SetDown(true)
			k.kills.Add(1)
			select {
			case <-done:
				k.Nodes[i].SetDown(false)
				return
			case <-time.After(k.DownTime):
			}
			k.Nodes[i].SetDown(false)
			select {
			case <-done:
				return
			case <-time.After(k.UpTime):
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		for _, n := range k.Nodes {
			n.SetDown(false)
		}
	}
}

// RunChaos is the chaos conformance suite: it drives concurrent per-key
// workloads against the store under test while faults fire, and checks
// every observation against a per-key possibility model.
//
// In the default mode the store is sandwiched between a fault injector
// below (kv/faulty with before-apply errors, lost-ack after-apply errors,
// and latency spikes) and the resilience wrapper above (kv/resilient with
// retries, hedged reads, write retries opted in). The model is exact for
// this workload: each worker owns its keys, so operations on a key are
// sequential, and an ambiguous failure (an error from a write that may have
// applied) simply widens the set of values the next read may legally
// return. Any observation outside that set is a linearizability violation —
// a real bug in the store, the injector, or the retry policy. Torn writes
// and stale reads are deliberately not injected here: no retry policy can
// mask them (kv/faulty's own tests cover their observability).
//
// With ChaosOptions.NodeKiller set, whole backend nodes die and recover
// mid-workload instead, and the model loosens to delayed-visibility
// semantics: a write that failed ambiguously stays possible even after an
// older value is observed, because a quorum store may legally complete it
// later via read repair or hinted handoff. Monotonicity per key is still
// enforced — once a value is observed, every older write and older delete
// is impossible forever — so lost updates, resurrections, and backward
// reads all still fail the suite. The killer stops (and every node is
// restored) before the final sweep, which then must explain every key.
//
// When the wrapped store implements kv.Batch the workload also issues
// multi-key reads and writes. A successful GetMulti is a simultaneous
// observation of every requested key (present keys collapse to the
// returned value, missing keys to absent); a failed one only constrains
// the keys whose values it actually returned. A failed PutMulti is
// ambiguous per key — the resilience layer may have split the batch, so
// each key independently may or may not hold its new value.
func RunChaos(t *testing.T, f Factory, opts ChaosOptions) {
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.OpsPerWorker == 0 {
		opts.OpsPerWorker = 150
	}
	if opts.KeysPerWorker == 0 {
		opts.KeysPerWorker = 5
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.ErrBefore == 0 {
		opts.ErrBefore = 0.15
	}
	if opts.ErrAfter == 0 {
		opts.ErrAfter = 0.10
	}
	if opts.PSpike == 0 {
		opts.PSpike = 0.05
	}
	retries := 12
	if os.Getenv("EDSC_CHAOS") == "aggressive" {
		opts.OpsPerWorker *= 4
		opts.ErrBefore = 0.30
		opts.ErrAfter = 0.20
		opts.PSpike = 0.10
		retries = 20
	}

	t.Run("Chaos", func(t *testing.T) {
		inner := open(t, f)
		var inj *faulty.Store
		under := inner
		if opts.NodeKiller == nil {
			inj = faulty.New(inner, faulty.Options{
				Seed:      opts.Seed,
				ErrBefore: opts.ErrBefore,
				ErrAfter:  opts.ErrAfter,
				PSpike:    opts.PSpike,
				Spike:     200 * time.Microsecond,
			})
			under = inj
		}
		res := resilient.New(under, resilient.Options{
			RetryWrites: true,
			MaxRetries:  retries,
			BaseBackoff: 100 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
			HedgeDelay:  time.Millisecond,
			Seed:        opts.Seed,
		})

		var stopKiller func()
		if k := opts.NodeKiller; k != nil {
			if len(k.Nodes) == 0 {
				t.Fatal("NodeKiller configured with no nodes")
			}
			stopKiller = k.start(opts.Seed)
		}

		var wg sync.WaitGroup
		errs := make(chan error, opts.Workers)
		workerStates := make([]map[string]*keyState, opts.Workers)
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				states, err := chaosWorker(res, w, opts)
				workerStates[w] = states
				if err != nil {
					errs <- err
				}
			}(w)
		}
		wg.Wait()

		// Every node is healthy again before the final sweep: with the
		// killer stopped the sweep must fully explain every key.
		if stopKiller != nil {
			stopKiller()
		}

		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}

		for w, states := range workerStates {
			if err := chaosSweep(res, w, states, opts); err != nil {
				t.Error(err)
			}
		}
		if t.Failed() {
			t.FailNow()
		}

		if k := opts.NodeKiller; k != nil {
			if k.Kills() == 0 {
				t.Fatal("chaos run killed no nodes — the suite tested nothing")
			}
		} else {
			if inj.Stats().Injected() == 0 {
				t.Fatal("chaos run injected no faults — the suite tested nothing")
			}
			if st := res.Stats(); st.Retries == 0 {
				t.Fatalf("faults were injected but nothing was retried: %+v", st)
			}
		}
		if opts.PostCheck != nil {
			opts.PostCheck(t, res)
		}
	})
}

// chaosAmbiguous reports whether err is a fault the chaos run injected (or
// an ambiguity the store surfaced) rather than a real bug. faulty.ErrInjected
// covers both sandwich-mode injections and killed-node refusals;
// kv.ErrAmbiguous covers stores that mark may-have-applied failures.
func chaosAmbiguous(err error, opts ChaosOptions) bool {
	if errors.Is(err, faulty.ErrInjected) || errors.Is(err, kv.ErrAmbiguous) {
		return true
	}
	for _, e := range opts.AmbiguousErrs {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// keyState is the set of states a key may legally be in, given the writes
// issued so far and which of them failed ambiguously. Every write (put or
// delete) gets a per-key monotonically increasing index; vals maps each
// possibly-present value to its write index and absents holds the indexes
// of possibly-winning deletes (index 0 is the key's initial absence).
//
// In strict mode (the sandwich injector) an observation collapses the set:
// a read that returns v makes v the only possible value, and a read that
// returns absent makes absence certain. In delayed mode (NodeKiller) an
// observation only establishes a floor: observing the value written at
// index i erases every value and delete older than i — they lost — but
// writes issued after i that failed ambiguously remain possible, because a
// replicated store may complete them later via read repair or hinted
// handoff. Both modes agree that observations are monotone per key; delayed
// mode merely declines to rule out the still-pending future.
type keyState struct {
	delayed bool
	nextIdx int
	vals    map[string]int // possibly-present value -> write index
	absents map[int]bool   // write indexes of possibly-winning deletes
}

func newKeyState(delayed bool) *keyState {
	return &keyState{
		delayed: delayed,
		nextIdx: 1,
		vals:    make(map[string]int),
		absents: map[int]bool{0: true}, // initially absent
	}
}

func (st *keyState) next() int {
	i := st.nextIdx
	st.nextIdx++
	return i
}

func (st *keyState) minAbsent() int {
	min, first := 0, true
	for i := range st.absents {
		if first || i < min {
			min, first = i, false
		}
	}
	return min
}

func (st *keyState) minVal() int {
	min, first := 0, true
	for _, i := range st.vals {
		if first || i < min {
			min, first = i, false
		}
	}
	return min
}

// noteWriteOK records a write that definitely applied: it beats everything
// issued before it, in both modes.
func (st *keyState) noteWriteOK(v string) {
	idx := st.next()
	st.vals = map[string]int{v: idx}
	st.absents = map[int]bool{}
}

// noteWriteAmbig records a write that may or may not have applied.
func (st *keyState) noteWriteAmbig(v string) {
	st.vals[v] = st.next()
}

// noteDeleteOK records a delete that definitely applied.
func (st *keyState) noteDeleteOK() {
	idx := st.next()
	st.vals = map[string]int{}
	st.absents = map[int]bool{idx: true}
}

// noteDeleteAmbig records a delete that may or may not have applied.
func (st *keyState) noteDeleteAmbig() {
	st.absents[st.next()] = true
}

// observeValue folds in a read that returned v. It reports false when v is
// not a possible value — a linearizability violation.
func (st *keyState) observeValue(v string) bool {
	idx, ok := st.vals[v]
	if !ok {
		return false
	}
	if st.delayed {
		// Everything older than the observed write has lost; later
		// ambiguous writes stay possible.
		for val, i := range st.vals {
			if i < idx {
				delete(st.vals, val)
			}
		}
		for i := range st.absents {
			if i < idx {
				delete(st.absents, i)
			}
		}
		return true
	}
	st.vals = map[string]int{v: idx}
	st.absents = map[int]bool{}
	return true
}

// observeAbsent folds in a read that found the key absent. It reports false
// when absence is impossible.
func (st *keyState) observeAbsent() bool {
	if len(st.absents) == 0 {
		return false
	}
	if st.delayed {
		// Some delete (or the initial absence) won; values older than every
		// candidate are gone for good, newer pending values may yet land.
		ma := st.minAbsent()
		for val, i := range st.vals {
			if i < ma {
				delete(st.vals, val)
			}
		}
		return true
	}
	st.vals = map[string]int{}
	return true
}

// observeContains folds in Contains(key) = true: some value is present,
// though we do not learn which. It reports false when the key must be
// absent.
func (st *keyState) observeContains() bool {
	if len(st.vals) == 0 {
		return false
	}
	if st.delayed {
		// Deletes older than every candidate value have lost.
		mv := st.minVal()
		for i := range st.absents {
			if i < mv {
				delete(st.absents, i)
			}
		}
		return true
	}
	st.absents = map[int]bool{}
	return true
}

// possible reports whether value v is currently possible (final sweep).
func (st *keyState) possible(v string) bool {
	_, ok := st.vals[v]
	return ok
}

func (st *keyState) absentPossible() bool { return len(st.absents) > 0 }

// chaosWorker drives one key space through the operation mix, folding every
// outcome into the possibility model. It returns its per-key states so the
// caller can run the final sweep after the fault source has stopped.
func chaosWorker(s kv.Store, w int, opts ChaosOptions) (map[string]*keyState, error) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
	delayed := opts.NodeKiller != nil
	states := make(map[string]*keyState, opts.KeysPerWorker)
	for i := 0; i < opts.KeysPerWorker; i++ {
		states[fmt.Sprintf("chaos-w%d-k%d", w, i)] = newKeyState(delayed)
	}
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}

	bs, hasBatch := kv.As[kv.Batch](s)

	for op := 0; op < opts.OpsPerWorker; op++ {
		draw := rng.Float64()
		if !hasBatch {
			// Map the batch share of the distribution back onto the
			// single-key operations.
			draw *= 0.82
		}
		k := keys[rng.Intn(len(keys))]
		st := states[k]
		switch {
		case draw < 0.40: // put
			v := fmt.Sprintf("w%d-op%d", w, op)
			err := s.Put(ctx, k, []byte(v))
			switch {
			case err == nil:
				st.noteWriteOK(v)
			case chaosAmbiguous(err, opts):
				st.noteWriteAmbig(v)
			default:
				return states, fmt.Errorf("worker %d op %d: Put(%q): %v", w, op, k, err)
			}

		case draw < 0.62: // get
			v, err := s.Get(ctx, k)
			switch {
			case err == nil:
				if !st.observeValue(string(v)) {
					return states, fmt.Errorf("worker %d op %d: Get(%q) = %q, not in possible set %v",
						w, op, k, v, possibleList(st))
				}
			case kv.IsNotFound(err):
				if !st.observeAbsent() {
					return states, fmt.Errorf("worker %d op %d: Get(%q) = NotFound, but key cannot be absent (possible %v)",
						w, op, k, possibleList(st))
				}
			case chaosAmbiguous(err, opts):
				// Retries exhausted; the read observed nothing.
			default:
				return states, fmt.Errorf("worker %d op %d: Get(%q): %v", w, op, k, err)
			}

		case draw < 0.74: // delete
			err := s.Delete(ctx, k)
			switch {
			case err == nil:
				// Deleted now, or found already deleted after a transient
				// failure — either way the key ends absent.
				st.noteDeleteOK()
			case kv.IsNotFound(err):
				if !st.observeAbsent() {
					return states, fmt.Errorf("worker %d op %d: Delete(%q) = NotFound, but key cannot be absent (possible %v)",
						w, op, k, possibleList(st))
				}
			case chaosAmbiguous(err, opts):
				st.noteDeleteAmbig()
			default:
				return states, fmt.Errorf("worker %d op %d: Delete(%q): %v", w, op, k, err)
			}

		case draw < 0.82: // contains
			ok, err := s.Contains(ctx, k)
			switch {
			case err == nil && ok:
				if !st.observeContains() {
					return states, fmt.Errorf("worker %d op %d: Contains(%q) = true, but key must be absent", w, op, k)
				}
			case err == nil && !ok:
				if !st.observeAbsent() {
					return states, fmt.Errorf("worker %d op %d: Contains(%q) = false, but key cannot be absent (possible %v)",
						w, op, k, possibleList(st))
				}
			case chaosAmbiguous(err, opts):
			default:
				return states, fmt.Errorf("worker %d op %d: Contains(%q): %v", w, op, k, err)
			}

		case draw < 0.91: // getmulti
			ks := sampleKeys(rng, keys, 1+rng.Intn(len(keys)))
			m, err := bs.GetMulti(ctx, ks)
			switch {
			case err == nil:
				// One simultaneous observation of every requested key.
				for _, bk := range ks {
					bst := states[bk]
					if v, ok := m[bk]; ok {
						if !bst.observeValue(string(v)) {
							return states, fmt.Errorf("worker %d op %d: GetMulti(%q) = %q, not in possible set %v",
								w, op, bk, v, possibleList(bst))
						}
					} else if !bst.observeAbsent() {
						return states, fmt.Errorf("worker %d op %d: GetMulti omitted %q, but key cannot be absent (possible %v)",
							w, op, bk, possibleList(bst))
					}
				}
			case chaosAmbiguous(err, opts):
				// Retries exhausted. Any values the partial result does carry
				// are still real observations; keys it omits told us nothing
				// (unread vs. read-and-absent is indistinguishable here).
				for _, bk := range ks {
					v, ok := m[bk]
					if !ok {
						continue
					}
					bst := states[bk]
					if !bst.observeValue(string(v)) {
						return states, fmt.Errorf("worker %d op %d: partial GetMulti(%q) = %q, not in possible set %v",
							w, op, bk, v, possibleList(bst))
					}
				}
			default:
				return states, fmt.Errorf("worker %d op %d: GetMulti(%v): %v", w, op, ks, err)
			}

		default: // putmulti
			ks := sampleKeys(rng, keys, 1+rng.Intn(len(keys)))
			pairs := make(map[string][]byte, len(ks))
			for _, bk := range ks {
				pairs[bk] = []byte(fmt.Sprintf("w%d-op%d-%s", w, op, bk))
			}
			err := bs.PutMulti(ctx, pairs)
			switch {
			case err == nil:
				for bk, v := range pairs {
					states[bk].noteWriteOK(string(v))
				}
			case chaosAmbiguous(err, opts):
				// Ambiguous per key: the resilience layer may have split the
				// batch, so each write independently may or may not have
				// applied.
				for bk, v := range pairs {
					states[bk].noteWriteAmbig(string(v))
				}
			default:
				return states, fmt.Errorf("worker %d op %d: PutMulti(%v): %v", w, op, ks, err)
			}
		}
	}
	return states, nil
}

// chaosSweep re-reads every key after the workload (and, under NodeKiller,
// after every node has been restored): each key must still be explainable
// by its possibility set.
func chaosSweep(s kv.Store, w int, states map[string]*keyState, opts ChaosOptions) error {
	ctx := context.Background()
	for k, st := range states {
		v, err := s.Get(ctx, k)
		switch {
		case err == nil:
			if !st.possible(string(v)) {
				return fmt.Errorf("worker %d final: Get(%q) = %q, not in possible set %v", w, k, v, possibleList(st))
			}
		case kv.IsNotFound(err):
			if !st.absentPossible() {
				return fmt.Errorf("worker %d final: Get(%q) = NotFound, but key cannot be absent (possible %v)",
					w, k, possibleList(st))
			}
		case chaosAmbiguous(err, opts):
			if opts.NodeKiller != nil {
				// All nodes are up; the final read has no excuse to fail.
				return fmt.Errorf("worker %d final: Get(%q) failed with all nodes healthy: %v", w, k, err)
			}
		default:
			return fmt.Errorf("worker %d final: Get(%q): %v", w, k, err)
		}
	}
	return nil
}

// sampleKeys draws n distinct keys from the worker's key space.
func sampleKeys(rng *rand.Rand, keys []string, n int) []string {
	if n > len(keys) {
		n = len(keys)
	}
	out := make([]string, n)
	for i, j := range rng.Perm(len(keys))[:n] {
		out[i] = keys[j]
	}
	return out
}

// possibleList renders a key's possibility set for error messages.
func possibleList(st *keyState) []string {
	var out []string
	for v := range st.vals {
		out = append(out, v)
	}
	if len(st.absents) > 0 {
		out = append(out, "<absent>")
	}
	return out
}
