package kvtest

import (
	"strings"
	"testing"

	"edsc/kv"
)

// StackLayer is one named middleware stage for RunStack. Layers are
// supplied by the caller (kvtest cannot import dscl or resilient for them
// without an import cycle — dscl's own tests run this suite).
type StackLayer struct {
	Name  string
	Layer kv.Layer
}

// RunStack is the middleware-composition conformance suite: for a matrix of
// stack orders built from layers over stores from f, it asserts that every
// capability the bare base store advertises is still discoverable through
// the stacked store via kv.As — and behaves, by running the capability
// suites (RunVersioned, RunExpiring, RunCompareAndPut, RunBatch) through
// the full stack. Layers must be semantically transparent to the data path
// (a cache, a transform, a retry wrapper — not a mock that drops writes).
//
// The matrix is every permutation of all layers (for up to three layers)
// plus each layer alone, so both ordering bugs ("transform outside the
// cache" vs inside) and single-layer hiding bugs are caught.
func RunStack(t *testing.T, f Factory, layers ...StackLayer) {
	if len(layers) == 0 {
		t.Fatal("RunStack needs at least one layer")
	}

	var baseCaps map[string]bool
	t.Run("BaseCapabilities", func(t *testing.T) {
		s := open(t, f)
		baseCaps = capsOf(s)
	})
	if baseCaps == nil {
		t.Fatal("could not profile the bare base store")
	}

	for _, order := range stackOrders(layers) {
		order := order
		names := make([]string, len(order))
		kvLayers := make([]kv.Layer, len(order))
		for i, l := range order {
			names[i] = l.Name
			kvLayers[i] = l.Layer
		}
		// Innermost layer first: "a_b" is b(a(base)).
		t.Run(strings.Join(names, "_"), func(t *testing.T) {
			sf := func(t *testing.T) (kv.Store, func()) {
				s, cleanup := f(t)
				return kv.Stack(s, kvLayers...), cleanup
			}
			t.Run("CapabilityParity", func(t *testing.T) {
				s := open(t, sf)
				got := capsOf(s)
				for name, had := range baseCaps {
					if had && !got[name] {
						t.Errorf("base capability kv.%s hidden by this stack", name)
					}
				}
			})
			t.Run("RoundTrip", func(t *testing.T) {
				testPutGet(t, sf)
				testGetMissing(t, sf)
				testOverwrite(t, sf)
				testDelete(t, sf)
			})
			t.Run("Batch", func(t *testing.T) { RunBatch(t, sf) })
			if baseCaps["Versioned"] {
				t.Run("Versioned", func(t *testing.T) { RunVersioned(t, sf) })
			}
			if baseCaps["Expiring"] {
				t.Run("Expiring", func(t *testing.T) { RunExpiring(t, sf) })
			}
			if baseCaps["CompareAndPut"] {
				t.Run("CompareAndPut", func(t *testing.T) { RunCompareAndPut(t, sf) })
			}
		})
	}
}

func has[T any](s kv.Store) bool {
	_, ok := kv.As[T](s)
	return ok
}

func capsOf(s kv.Store) map[string]bool {
	return map[string]bool{
		"Versioned":      has[kv.Versioned](s),
		"VersionedBatch": has[kv.VersionedBatch](s),
		"Expiring":       has[kv.Expiring](s),
		"SQL":            has[kv.SQL](s),
		"CompareAndPut":  has[kv.CompareAndPut](s),
	}
}

// stackOrders builds the order matrix: every permutation when there are at
// most three layers (cyclic rotations beyond that, to keep the matrix
// bounded), plus each single layer.
func stackOrders(layers []StackLayer) [][]StackLayer {
	var orders [][]StackLayer
	if len(layers) <= 3 {
		orders = permute(layers)
	} else {
		for i := range layers {
			rot := make([]StackLayer, 0, len(layers))
			rot = append(rot, layers[i:]...)
			rot = append(rot, layers[:i]...)
			orders = append(orders, rot)
		}
	}
	if len(layers) > 1 {
		for _, l := range layers {
			orders = append(orders, []StackLayer{l})
		}
	}
	return orders
}

func permute(layers []StackLayer) [][]StackLayer {
	if len(layers) <= 1 {
		return [][]StackLayer{append([]StackLayer(nil), layers...)}
	}
	var out [][]StackLayer
	for i := range layers {
		rest := make([]StackLayer, 0, len(layers)-1)
		rest = append(rest, layers[:i]...)
		rest = append(rest, layers[i+1:]...)
		for _, p := range permute(rest) {
			out = append(out, append([]StackLayer{layers[i]}, p...))
		}
	}
	return out
}
