package kv

import "context"

// Batch is implemented by stores that can serve multiple keys in one
// round trip (MGET/MSET on the cache server, for instance). Code that wants
// batching without caring whether the store supports it natively uses the
// GetMulti/PutMulti helpers, which fall back to per-key loops.
type Batch interface {
	// GetMulti fetches several keys at once. Missing keys are simply
	// absent from the result; only transport-level failures error.
	GetMulti(ctx context.Context, keys []string) (map[string][]byte, error)

	// PutMulti stores several pairs at once. Not atomic unless the
	// underlying store says otherwise.
	PutMulti(ctx context.Context, pairs map[string][]byte) error
}

// GetMulti fetches keys from s, using its native batch support when
// available and a per-key loop otherwise.
func GetMulti(ctx context.Context, s Store, keys []string) (map[string][]byte, error) {
	if b, ok := s.(Batch); ok {
		return b.GetMulti(ctx, keys)
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		v, err := s.Get(ctx, k)
		if IsNotFound(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// PutMulti stores pairs into s, using native batch support when available.
func PutMulti(ctx context.Context, s Store, pairs map[string][]byte) error {
	if b, ok := s.(Batch); ok {
		return b.PutMulti(ctx, pairs)
	}
	for k, v := range pairs {
		if err := s.Put(ctx, k, v); err != nil {
			return err
		}
	}
	return nil
}
