package kv

import (
	"context"
	"sync"
)

// Batch is implemented by stores that can serve multiple keys in one
// round trip (MGET/MSET on the cache server, the bulk endpoints on the
// cloud stores). Code that wants batching without caring whether the store
// supports it natively uses the GetMulti/PutMulti helpers, which fall back
// to a bounded-concurrency parallel fan-out.
type Batch interface {
	// GetMulti fetches several keys at once. Missing keys are simply
	// absent from the result; only transport-level failures error.
	GetMulti(ctx context.Context, keys []string) (map[string][]byte, error)

	// PutMulti stores several pairs at once. Not atomic unless the
	// underlying store says otherwise.
	PutMulti(ctx context.Context, pairs map[string][]byte) error
}

// VersionedValue is one batch-read result carrying the version under which
// the value was read.
type VersionedValue struct {
	Value   []byte
	Version Version
}

// VersionedBatch is implemented by stores whose batch reads also report
// per-key versions (the cloud stores' bulk endpoint returns each object's
// ETag). A caching client can then install everything one batch fetched
// with the metadata its revalidation path needs.
type VersionedBatch interface {
	Batch

	// GetMultiVersioned is GetMulti plus each key's version. Missing keys
	// are absent from the result.
	GetMultiVersioned(ctx context.Context, keys []string) (map[string]VersionedValue, error)
}

// BatchFanout bounds the concurrency of the GetMulti/PutMulti fallback
// fan-out for stores without native batch support: enough parallelism to
// amortize round-trip latency without stampeding a store's connection pool.
const BatchFanout = 8

// GetMulti fetches keys from s, using its native batch support when
// available and a bounded-concurrency parallel fan-out of Gets otherwise.
//
// Fallback semantics: every key is attempted; keys the store reports as
// absent (ErrNotFound) are simply missing from the result. On any other
// failure the remaining fetches are cancelled and GetMulti returns the
// partial result gathered so far together with the first error — callers
// that care only about completeness check err, callers that can use a
// partial answer (a cache warming pass, for instance) may use both.
func GetMulti(ctx context.Context, s Store, keys []string) (map[string][]byte, error) {
	if b, ok := As[Batch](s); ok {
		return b.GetMulti(ctx, keys)
	}
	out := make(map[string][]byte, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, BatchFanout)
	)
	for _, k := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(k string) {
			defer func() { <-sem; wg.Done() }()
			if cctx.Err() != nil {
				return // a sibling already failed; don't bother
			}
			v, err := s.Get(cctx, k)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				out[k] = v
			case IsNotFound(err):
				// Absent keys are not an error.
			case firstErr == nil:
				firstErr = err
				cancel()
			}
		}(k)
	}
	wg.Wait()
	return out, firstErr
}

// PutMulti stores pairs into s, using native batch support when available
// and a bounded-concurrency parallel fan-out of Puts otherwise.
//
// Fallback semantics: on failure the remaining writes are cancelled and the
// first error is returned; pairs whose Put already succeeded stay written
// (batch writes are not atomic — see Batch).
func PutMulti(ctx context.Context, s Store, pairs map[string][]byte) error {
	if b, ok := As[Batch](s); ok {
		return b.PutMulti(ctx, pairs)
	}
	if len(pairs) == 0 {
		return nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, BatchFanout)
	)
	for k, v := range pairs {
		wg.Add(1)
		sem <- struct{}{}
		go func(k string, v []byte) {
			defer func() { <-sem; wg.Done() }()
			if cctx.Err() != nil {
				return
			}
			if err := s.Put(cctx, k, v); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
			}
		}(k, v)
	}
	wg.Wait()
	return firstErr
}

// GetMultiVersioned fetches keys with versions, using native versioned
// batch support when available and a fan-out of GetVersioned otherwise.
// Stores without kv.Versioned yield values with NoVersion. Fallback
// semantics match GetMulti: partial result plus first error.
func GetMultiVersioned(ctx context.Context, s Store, keys []string) (map[string]VersionedValue, error) {
	if vb, ok := As[VersionedBatch](s); ok {
		return vb.GetMultiVersioned(ctx, keys)
	}
	vs, versioned := As[Versioned](s)
	if !versioned {
		flat, err := GetMulti(ctx, s, keys)
		out := make(map[string]VersionedValue, len(flat))
		for k, v := range flat {
			out[k] = VersionedValue{Value: v, Version: NoVersion}
		}
		return out, err
	}
	out := make(map[string]VersionedValue, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, BatchFanout)
	)
	for _, k := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(k string) {
			defer func() { <-sem; wg.Done() }()
			if cctx.Err() != nil {
				return
			}
			v, ver, err := vs.GetVersioned(cctx, k)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				out[k] = VersionedValue{Value: v, Version: ver}
			case IsNotFound(err):
			case firstErr == nil:
				firstErr = err
				cancel()
			}
		}(k)
	}
	wg.Wait()
	return out, firstErr
}
