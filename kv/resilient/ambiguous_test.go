package resilient_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"edsc/kv"
	"edsc/kv/resilient"
)

// ambiguousBatch models a replicated store whose batch write partially
// applies and then fails ambiguously — the shape of a cluster PutMulti that
// reached some replicas but missed its write quorum. The first PutMulti
// call installs exactly one pair (non-idempotent evidence: a counter
// records every application) and returns an error wrapping kv.ErrAmbiguous;
// later calls succeed.
type ambiguousBatch struct {
	*kv.Mem
	putMultiCalls atomic.Int64
	putCalls      atomic.Int64
	applied       atomic.Int64 // individual pair applications, any path
}

func (m *ambiguousBatch) PutMulti(ctx context.Context, pairs map[string][]byte) error {
	call := m.putMultiCalls.Add(1)
	if call == 1 {
		for k, v := range pairs {
			// Apply one pair, then die ambiguously.
			if err := m.Mem.Put(ctx, k, v); err != nil {
				return err
			}
			m.applied.Add(1)
			break
		}
		return &kv.StoreError{Store: "ambig", Op: "putmulti",
			Err: fmt.Errorf("quorum lost mid-write: %w", errors.Join(kv.ErrAmbiguous, errors.New("node b: connection reset")))}
	}
	for k, v := range pairs {
		if err := m.Mem.Put(ctx, k, v); err != nil {
			return err
		}
		m.applied.Add(1)
	}
	return nil
}

func (m *ambiguousBatch) Put(ctx context.Context, key string, value []byte) error {
	m.putCalls.Add(1)
	m.applied.Add(1)
	return m.Mem.Put(ctx, key, value)
}

// GetMulti completes the kv.Batch interface (kv.As discovers the pair).
func (m *ambiguousBatch) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	return kv.GetMulti(ctx, m.Mem, keys)
}

// TestPutMultiAmbiguousNotReplayedWithoutOptIn pins the idempotency gate:
// without RetryWrites, a batch write that failed ambiguously (it may have
// partially applied) must NOT be replayed via the per-key split path — the
// ambiguity surfaces to the caller instead, exactly like the miniredis
// client's refusal to replay a non-idempotent exchange.
func TestPutMultiAmbiguousNotReplayedWithoutOptIn(t *testing.T) {
	ctx := context.Background()
	inner := &ambiguousBatch{Mem: kv.NewMem("ambig")}
	s := resilient.New(inner, resilient.Options{MaxRetries: 3}) // RetryWrites: false
	defer s.Close()

	pairs := map[string][]byte{"a": []byte("1"), "b": []byte("2"), "c": []byte("3")}
	err := s.PutMulti(ctx, pairs)
	if err == nil {
		t.Fatal("ambiguous PutMulti reported success without RetryWrites")
	}
	if !errors.Is(err, kv.ErrAmbiguous) {
		t.Fatalf("error lost the ambiguity marker: %v", err)
	}
	if got := inner.putMultiCalls.Load(); got != 1 {
		t.Fatalf("native PutMulti called %d times, want exactly 1 (no blind replay)", got)
	}
	if got := inner.putCalls.Load(); got != 0 {
		t.Fatalf("split path replayed %d per-key Puts despite RetryWrites=false", got)
	}
	if got := inner.applied.Load(); got != 1 {
		t.Fatalf("pairs applied %d times, want the 1 partial application only", got)
	}
}

// TestPutMultiAmbiguousReplayedWithOptIn is the flip side: RetryWrites is
// the caller's declaration that its writes are idempotent, so the same
// ambiguous failure is retried and the batch completes.
func TestPutMultiAmbiguousReplayedWithOptIn(t *testing.T) {
	ctx := context.Background()
	inner := &ambiguousBatch{Mem: kv.NewMem("ambig")}
	s := resilient.New(inner, resilient.Options{MaxRetries: 3, RetryWrites: true})
	defer s.Close()

	pairs := map[string][]byte{"a": []byte("1"), "b": []byte("2"), "c": []byte("3")}
	if err := s.PutMulti(ctx, pairs); err != nil {
		t.Fatalf("PutMulti with RetryWrites: %v", err)
	}
	for k, want := range pairs {
		got, err := s.Get(ctx, k)
		if err != nil || string(got) != string(want) {
			t.Fatalf("after retried batch, Get(%q) = %q, %v", k, got, err)
		}
	}
	if got := inner.putMultiCalls.Load(); got < 2 {
		t.Fatalf("native PutMulti called %d times, want a retry after the ambiguous failure", got)
	}
}

// TestPutMultiTransientStillSplitsWithoutOptIn guards against overcorrecting:
// a batch failure that is NOT ambiguous (nothing applied — e.g. the inner
// store refused the call outright) may still fall to the per-key split path
// even without RetryWrites, because re-issuing an unapplied write is not a
// replay.
func TestPutMultiTransientStillSplitsWithoutOptIn(t *testing.T) {
	ctx := context.Background()
	inner := &rejectOnceBatch{Mem: kv.NewMem("transient")}
	s := resilient.New(inner, resilient.Options{MaxRetries: 3}) // RetryWrites: false
	defer s.Close()

	pairs := map[string][]byte{"a": []byte("1"), "b": []byte("2")}
	if err := s.PutMulti(ctx, pairs); err != nil {
		t.Fatalf("PutMulti: %v", err)
	}
	if got := inner.putCalls.Load(); got != int64(len(pairs)) {
		t.Fatalf("split path issued %d per-key Puts, want %d", got, len(pairs))
	}
}

// rejectOnceBatch fails its first PutMulti before applying anything — a
// clean transient, no ambiguity marker.
type rejectOnceBatch struct {
	*kv.Mem
	putMultiCalls atomic.Int64
	putCalls      atomic.Int64
}

func (m *rejectOnceBatch) PutMulti(ctx context.Context, pairs map[string][]byte) error {
	if m.putMultiCalls.Add(1) == 1 {
		return &kv.StoreError{Store: "transient", Op: "putmulti", Err: errors.New("backend briefly unavailable")}
	}
	return kv.PutMulti(ctx, m.Mem, pairs)
}

func (m *rejectOnceBatch) Put(ctx context.Context, key string, value []byte) error {
	m.putCalls.Add(1)
	return m.Mem.Put(ctx, key, value)
}

func (m *rejectOnceBatch) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	return kv.GetMulti(ctx, m.Mem, keys)
}
