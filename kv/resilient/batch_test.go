package resilient_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"edsc/kv"
	"edsc/kv/kvtest"
	"edsc/kv/resilient"
)

// batchMem gives kv.Mem a native (and instrumented) kv.Batch implementation
// so tests can tell the native path from the per-key split path.
type batchMem struct {
	*kv.Mem
	getMultiCalls int
	putMultiCalls int
	getMultiErr   error // returned by GetMulti while failN > 0 or failN < 0
	failN         int   // >0: fail that many calls; <0: fail forever
}

func (m *batchMem) fail() bool {
	if m.failN < 0 {
		return true
	}
	if m.failN > 0 {
		m.failN--
		return true
	}
	return false
}

func (m *batchMem) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	m.getMultiCalls++
	if m.fail() {
		return nil, m.getMultiErr
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		v, err := m.Get(ctx, k)
		if kv.IsNotFound(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func (m *batchMem) PutMulti(ctx context.Context, pairs map[string][]byte) error {
	m.putMultiCalls++
	if m.fail() {
		return m.getMultiErr
	}
	for k, v := range pairs {
		if err := m.Put(ctx, k, v); err != nil {
			return err
		}
	}
	return nil
}

func fastOpts() resilient.Options {
	return resilient.Options{MaxRetries: 2, BaseBackoff: 100 * time.Microsecond, RetryWrites: true}
}

// TestWrapperOfBatchStoreIsBatch is the capability-audit regression: the
// wrapper must satisfy kv.Batch and route multi-key calls through the inner
// store's native batch methods, not per-key loops.
func TestWrapperOfBatchStoreIsBatch(t *testing.T) {
	ctx := context.Background()
	inner := &batchMem{Mem: kv.NewMem("m")}
	s := resilient.New(inner, fastOpts())

	if _, ok := kv.As[kv.Batch](s); !ok {
		t.Fatal("resilient wrapper of a kv.Batch store does not provide kv.Batch")
	}

	if err := s.PutMulti(ctx, map[string][]byte{"a": []byte("1"), "b": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetMulti(ctx, []string{"a", "b", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got["a"]) != "1" || string(got["b"]) != "2" {
		t.Fatalf("GetMulti = %v", got)
	}
	if inner.getMultiCalls != 1 || inner.putMultiCalls != 1 {
		t.Fatalf("native batch calls = %d get / %d put, want 1/1",
			inner.getMultiCalls, inner.putMultiCalls)
	}
	if st := s.Stats(); st.BatchSplits != 0 {
		t.Fatalf("BatchSplits = %d on the happy path, want 0", st.BatchSplits)
	}
}

// TestBatchRetryThenSplit: transient native failures are retried as a whole
// batch; persistent ones degrade to per-key operations, which still succeed
// because the per-key methods work.
func TestBatchRetryThenSplit(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("boom")

	// Transient: two native failures, then success — no split.
	inner := &batchMem{Mem: kv.NewMem("m"), getMultiErr: boom, failN: 2}
	s := resilient.New(inner, fastOpts())
	if err := inner.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetMulti(ctx, []string{"k"})
	if err != nil || string(got["k"]) != "v" {
		t.Fatalf("GetMulti = %v, %v", got, err)
	}
	if st := s.Stats(); st.BatchSplits != 0 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 2 retries and no split", st)
	}

	// Persistent: the native path never recovers, the split path answers.
	inner = &batchMem{Mem: kv.NewMem("m"), getMultiErr: boom, failN: -1}
	s = resilient.New(inner, fastOpts())
	if err := inner.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err = s.GetMulti(ctx, []string{"k", "missing"})
	if err != nil || len(got) != 1 || string(got["k"]) != "v" {
		t.Fatalf("split GetMulti = %v, %v", got, err)
	}
	if err := s.PutMulti(ctx, map[string][]byte{"x": []byte("1")}); err != nil {
		t.Fatalf("split PutMulti: %v", err)
	}
	if v, err := inner.Get(ctx, "x"); err != nil || string(v) != "1" {
		t.Fatalf("inner after split PutMulti = %q, %v", v, err)
	}
	if st := s.Stats(); st.BatchSplits != 2 {
		t.Fatalf("BatchSplits = %d, want 2", st.BatchSplits)
	}
}

// TestBatchFallbackWithoutInnerBatch: wrapping a plain store still yields a
// working kv.Batch via the wrapper's own retried per-key operations.
func TestBatchFallbackWithoutInnerBatch(t *testing.T) {
	ctx := context.Background()
	s := resilient.New(kv.NewMem("m"), fastOpts())
	if err := s.PutMulti(ctx, map[string][]byte{"a": []byte("1"), "b": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetMulti(ctx, []string{"a", "b", "nope"})
	if err != nil || len(got) != 2 {
		t.Fatalf("GetMulti = %v, %v", got, err)
	}
}

// expiringMem is a minimal kv.Expiring stub for forwarding tests.
type expiringMem struct {
	*kv.Mem
	ttls map[string]int64
}

func (m *expiringMem) PutTTL(ctx context.Context, key string, value []byte, ttlNanos int64) error {
	if err := m.Put(ctx, key, value); err != nil {
		return err
	}
	m.ttls[key] = ttlNanos
	return nil
}

func (m *expiringMem) TTL(ctx context.Context, key string) (int64, error) {
	if _, err := m.Get(ctx, key); err != nil {
		return 0, err
	}
	return m.ttls[key], nil
}

// TestCapabilityDiscovery replaces PR 3's hand-written forwarding audit:
// capabilities the wrapper does not intercept (Expiring, SQL) are found on
// the inner store through the kv.As walk, intercepted ones (Versioned, CAS)
// resolve to the wrapper itself exactly when the inner stack supports them,
// and nothing is ever invented for an inner store that lacks it.
func TestCapabilityDiscovery(t *testing.T) {
	ctx := context.Background()

	exp := &expiringMem{Mem: kv.NewMem("m"), ttls: map[string]int64{}}
	s := resilient.New(exp, fastOpts())
	es, ok := kv.As[kv.Expiring](s)
	if !ok {
		t.Fatal("kv.Expiring not discovered through the wrapper")
	}
	if err := es.PutTTL(ctx, "k", []byte("v"), int64(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if d, err := es.TTL(ctx, "k"); err != nil || d != int64(time.Minute) {
		t.Fatalf("TTL = %d, %v", d, err)
	}
	// TTL writes are visible through the wrapper's data path and vice versa.
	if v, err := s.Get(ctx, "k"); err != nil || string(v) != "v" {
		t.Fatalf("Get after PutTTL = %q, %v", v, err)
	}

	// Inner without the capability: the walk finds nothing.
	plain := resilient.New(kv.NewMem("m"), fastOpts())
	if _, ok := kv.As[kv.Expiring](plain); ok {
		t.Fatal("kv.Expiring invented over a plain kv.Mem")
	}
	if _, ok := kv.As[kv.SQL](plain); ok {
		t.Fatal("kv.SQL invented over a plain kv.Mem")
	}
	if _, ok := kv.As[kv.Versioned](plain); ok {
		t.Fatal("kv.Versioned invented over a plain kv.Mem")
	}
	if _, ok := kv.As[kv.VersionedBatch](plain); ok {
		t.Fatal("kv.VersionedBatch invented over a plain kv.Mem")
	}

	// Intercepted capability: kv.Mem supports CAS, so the walk must resolve
	// to the wrapper (retried CAS), not the bare store.
	cas, ok := kv.As[kv.CompareAndPut](plain)
	if !ok {
		t.Fatal("kv.CompareAndPut not discovered over kv.Mem")
	}
	if _, isWrapper := cas.(*resilient.Store); !isWrapper {
		t.Fatalf("CAS resolved to %T, want the resilient wrapper to intercept it", cas)
	}
	if _, err := cas.PutIfVersion(ctx, "c", []byte("v"), kv.NoVersion); err != nil {
		t.Fatal(err)
	}

	// Direct calls on an unsupported wrapper still refuse explicitly.
	var se *kv.StoreError
	if _, _, err := plain.GetVersioned(ctx, "k"); !errors.As(err, &se) {
		t.Fatalf("GetVersioned on non-versioned inner = %v, want *kv.StoreError", err)
	}
	if _, err := plain.GetMultiVersioned(ctx, []string{"k"}); !errors.As(err, &se) {
		t.Fatalf("GetMultiVersioned on non-versioned inner = %v, want *kv.StoreError", err)
	}
}

// TestBatchConformanceOverMem runs the shared batch conformance suite over
// the wrapper in fallback mode (plain kv.Mem inner).
func TestBatchConformanceOverMem(t *testing.T) {
	kvtest.RunBatch(t, func(t *testing.T) (kv.Store, func()) {
		s := resilient.New(kv.NewMem("m"), fastOpts())
		return s, func() { s.Close() }
	})
}
