package resilient

import (
	"context"
	"errors"

	"edsc/kv"
)

// Batch interception. The wrapper always implements kv.Batch: when the inner
// store does too, multi-key calls take its native one-round-trip path under
// the usual retry policy; otherwise (or when the whole-batch path has
// exhausted its retries) the batch is split into per-key operations, each
// with its own retry/hedge budget, so one bad key cannot sink the rest.
// Splits are counted in Stats and reported to the Recorder as "batch_split".
//
// Capabilities outside the kv data path (kv.Expiring, kv.SQL) are no longer
// forwarded by hand: the wrapper exposes Unwrap and the kv.As walk discovers
// them on the inner store directly. PR 3's forwarding shims and capability
// audit are gone — the middleware model makes them unnecessary by
// construction.

var _ kv.Batch = (*Store)(nil)

// unbatched hides the wrapper's own batch methods so the kv fallback helpers
// fan out over the wrapper's retried per-key Get/Put instead of recursing.
// It deliberately does not expose Unwrap: the fan-out must go through the
// wrapper, not around it.
type unbatched struct{ kv.Store }

// GetMulti implements kv.Batch. Partial-result semantics match kv.GetMulti:
// absent keys are simply missing from the map, and on failure the partial
// map is returned along with the first error.
func (s *Store) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	if b, ok := kv.As[kv.Batch](s.inner); ok {
		var out map[string][]byte
		err := s.do(ctx, "getmulti", s.readRetries(), func(actx context.Context) error {
			m, err := b.GetMulti(actx, keys)
			if err != nil {
				return err
			}
			out = m
			return nil
		})
		if err == nil {
			return out, nil
		}
		if !retryable(err) || ctx.Err() != nil {
			return nil, err
		}
		// The whole batch kept failing; isolate the damage per key.
		s.splits.Add(1)
		s.record("batch_split", 0, false)
	}
	return kv.GetMulti(ctx, unbatched{s}, keys)
}

// PutMulti implements kv.Batch. The native batch write is a blind write and
// follows the RetryWrites policy, as does each per-key Put on the split path.
//
// The split path is itself a replay: re-issuing the batch per key re-applies
// writes the failed native attempt may already have landed (a quorum write
// that reached some replicas, a pipelined MSET cut off mid-exchange). When
// the failure marks itself ambiguous — errors.Is(err, kv.ErrAmbiguous) —
// the split only proceeds if the caller opted into write replay via
// RetryWrites; otherwise the ambiguity surfaces unresolved, mirroring the
// miniredis client's non-idempotent exchange rule one layer down.
func (s *Store) PutMulti(ctx context.Context, pairs map[string][]byte) error {
	if b, ok := kv.As[kv.Batch](s.inner); ok {
		err := s.do(ctx, "putmulti", s.writeRetries(), func(actx context.Context) error {
			return b.PutMulti(actx, pairs)
		})
		if err == nil || !retryable(err) || ctx.Err() != nil {
			return err
		}
		if !s.opts.RetryWrites && errors.Is(err, kv.ErrAmbiguous) {
			return err
		}
		s.splits.Add(1)
		s.record("batch_split", 0, false)
	}
	return kv.PutMulti(ctx, unbatched{s}, pairs)
}
