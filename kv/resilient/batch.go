package resilient

import (
	"context"
	"errors"

	"edsc/kv"
)

// Batch passthrough. The wrapper always implements kv.Batch: when the inner
// store does too, multi-key calls take its native one-round-trip path under
// the usual retry policy; otherwise (or when the whole-batch path has
// exhausted its retries) the batch is split into per-key operations, each
// with its own retry/hedge budget, so one bad key cannot sink the rest.
// Splits are counted in Stats and reported to the Recorder as "batch_split".
//
// Capability audit (see PutIfVersion for the precedent): kv.Expiring and
// kv.SQL are forwarded with retries when the inner store supports them and
// fail with a *kv.StoreError when it does not. There is no safe degraded
// mode for either — dropping a TTL or refusing SQL silently would change
// semantics, so the error is explicit.

var (
	_ kv.Batch    = (*Store)(nil)
	_ kv.Expiring = (*Store)(nil)
	_ kv.SQL      = (*Store)(nil)
)

// unbatched hides the wrapper's own batch methods so the kv fallback helpers
// fan out over the wrapper's retried per-key Get/Put instead of recursing.
type unbatched struct{ kv.Store }

// GetMulti implements kv.Batch. Partial-result semantics match kv.GetMulti:
// absent keys are simply missing from the map, and on failure the partial
// map is returned along with the first error.
func (s *Store) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	if b, ok := s.inner.(kv.Batch); ok {
		var out map[string][]byte
		err := s.do(ctx, "getmulti", s.readRetries(), func(actx context.Context) error {
			m, err := b.GetMulti(actx, keys)
			if err != nil {
				return err
			}
			out = m
			return nil
		})
		if err == nil {
			return out, nil
		}
		if !retryable(err) || ctx.Err() != nil {
			return nil, err
		}
		// The whole batch kept failing; isolate the damage per key.
		s.splits.Add(1)
		s.record("batch_split", 0, false)
	}
	return kv.GetMulti(ctx, unbatched{s}, keys)
}

// PutMulti implements kv.Batch. The native batch write is a blind write and
// follows the RetryWrites policy, as does each per-key Put on the split path.
func (s *Store) PutMulti(ctx context.Context, pairs map[string][]byte) error {
	if b, ok := s.inner.(kv.Batch); ok {
		err := s.do(ctx, "putmulti", s.writeRetries(), func(actx context.Context) error {
			return b.PutMulti(actx, pairs)
		})
		if err == nil || !retryable(err) || ctx.Err() != nil {
			return err
		}
		s.splits.Add(1)
		s.record("batch_split", 0, false)
	}
	return kv.PutMulti(ctx, unbatched{s}, pairs)
}

// PutTTL forwards kv.Expiring with the write-retry policy.
func (s *Store) PutTTL(ctx context.Context, key string, value []byte, ttlNanos int64) error {
	exp, ok := s.inner.(kv.Expiring)
	if !ok {
		return &kv.StoreError{Store: s.Name(), Op: "putttl", Key: key,
			Err: errors.New("resilient: inner store does not implement kv.Expiring")}
	}
	return s.do(ctx, "putttl", s.writeRetries(), func(actx context.Context) error {
		return exp.PutTTL(actx, key, value, ttlNanos)
	})
}

// TTL forwards kv.Expiring with the read-retry policy.
func (s *Store) TTL(ctx context.Context, key string) (int64, error) {
	exp, ok := s.inner.(kv.Expiring)
	if !ok {
		return 0, &kv.StoreError{Store: s.Name(), Op: "ttl", Key: key,
			Err: errors.New("resilient: inner store does not implement kv.Expiring")}
	}
	var out int64
	err := s.do(ctx, "ttl", s.readRetries(), func(actx context.Context) error {
		d, err := exp.TTL(actx, key)
		if err != nil {
			return err
		}
		out = d
		return nil
	})
	if err != nil {
		return 0, err
	}
	return out, nil
}

// Exec forwards kv.SQL. Arbitrary statements are not known to be idempotent,
// so Exec follows the blind-write retry policy.
func (s *Store) Exec(ctx context.Context, query string) (int, error) {
	sq, ok := s.inner.(kv.SQL)
	if !ok {
		return 0, &kv.StoreError{Store: s.Name(), Op: "exec",
			Err: errors.New("resilient: inner store does not implement kv.SQL")}
	}
	var out int
	err := s.do(ctx, "exec", s.writeRetries(), func(actx context.Context) error {
		n, err := sq.Exec(actx, query)
		if err != nil {
			return err
		}
		out = n
		return nil
	})
	if err != nil {
		return 0, err
	}
	return out, nil
}

// Query forwards kv.SQL with the read-retry policy.
func (s *Store) Query(ctx context.Context, query string) (*kv.Rows, error) {
	sq, ok := s.inner.(kv.SQL)
	if !ok {
		return nil, &kv.StoreError{Store: s.Name(), Op: "query",
			Err: errors.New("resilient: inner store does not implement kv.SQL")}
	}
	var out *kv.Rows
	err := s.do(ctx, "query", s.readRetries(), func(actx context.Context) error {
		r, err := sq.Query(actx, query)
		if err != nil {
			return err
		}
		out = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
