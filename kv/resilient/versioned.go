package resilient

import (
	"context"
	"errors"

	"edsc/kv"
)

// Versioned interception. Version-aware reads and writes are part of the kv
// data path — a caching client revalidating through this wrapper must get
// the same retry/hedge/breaker protection as a plain Get, or a transient
// fault would surface to it while plain readers are masked. So the wrapper
// implements kv.Versioned and kv.VersionedBatch itself (it *intercepts*
// rather than passes through; see kv.As) whenever the inner stack supports
// versions — Intercepts in resilient.go declines both otherwise, and a
// direct call on an unsupported wrapper reports an explicit *kv.StoreError
// (the PutIfVersion precedent).

var (
	_ kv.Versioned      = (*Store)(nil)
	_ kv.VersionedBatch = (*Store)(nil)
	_ kv.CompareAndPut  = (*Store)(nil)
)

func (s *Store) versioned(op, key string) (kv.Versioned, error) {
	vs, ok := kv.As[kv.Versioned](s.inner)
	if !ok {
		return nil, &kv.StoreError{Store: s.Name(), Op: op, Key: key,
			Err: errors.New("resilient: inner store does not implement kv.Versioned")}
	}
	return vs, nil
}

// GetVersioned implements kv.Versioned with the read-retry policy.
func (s *Store) GetVersioned(ctx context.Context, key string) ([]byte, kv.Version, error) {
	vs, err := s.versioned("getversioned", key)
	if err != nil {
		return nil, kv.NoVersion, err
	}
	var (
		out []byte
		ver kv.Version
	)
	err = s.do(ctx, "getversioned", s.readRetries(), func(actx context.Context) error {
		v, vr, err := vs.GetVersioned(actx, key)
		if err != nil {
			return err
		}
		out, ver = v, vr
		return nil
	})
	if err != nil {
		return nil, kv.NoVersion, err
	}
	return out, ver, nil
}

// GetIfModified implements kv.Versioned with the read-retry policy.
func (s *Store) GetIfModified(ctx context.Context, key string, since kv.Version) ([]byte, kv.Version, bool, error) {
	vs, err := s.versioned("getifmodified", key)
	if err != nil {
		return nil, kv.NoVersion, false, err
	}
	var (
		out      []byte
		ver      kv.Version
		modified bool
	)
	err = s.do(ctx, "getifmodified", s.readRetries(), func(actx context.Context) error {
		v, vr, mod, err := vs.GetIfModified(actx, key, since)
		if err != nil {
			return err
		}
		out, ver, modified = v, vr, mod
		return nil
	})
	if err != nil {
		return nil, kv.NoVersion, false, err
	}
	return out, ver, modified, nil
}

// PutVersioned implements kv.Versioned. Like Put it is a blind write, so it
// follows the RetryWrites policy.
func (s *Store) PutVersioned(ctx context.Context, key string, value []byte) (kv.Version, error) {
	vs, err := s.versioned("putversioned", key)
	if err != nil {
		return kv.NoVersion, err
	}
	var out kv.Version
	err = s.do(ctx, "putversioned", s.writeRetries(), func(actx context.Context) error {
		v, err := vs.PutVersioned(actx, key, value)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	if err != nil {
		return kv.NoVersion, err
	}
	return out, nil
}

// unbatchedVersioned exposes the wrapper's retried per-key operations while
// hiding its batch methods, so the kv fallback fan-out does not recurse into
// GetMultiVersioned.
type unbatchedVersioned struct {
	kv.Store
	kv.Versioned
}

// GetMultiVersioned implements kv.VersionedBatch: the inner store's native
// versioned batch under the read-retry policy when it has one, otherwise a
// fan-out over the wrapper's retried GetVersioned (each key with its own
// retry budget, mirroring the GetMulti split path).
func (s *Store) GetMultiVersioned(ctx context.Context, keys []string) (map[string]kv.VersionedValue, error) {
	if _, err := s.versioned("getmultiversioned", ""); err != nil {
		return nil, err
	}
	if vb, ok := kv.As[kv.VersionedBatch](s.inner); ok {
		var out map[string]kv.VersionedValue
		err := s.do(ctx, "getmultiversioned", s.readRetries(), func(actx context.Context) error {
			m, err := vb.GetMultiVersioned(actx, keys)
			if err != nil {
				return err
			}
			out = m
			return nil
		})
		if err == nil {
			return out, nil
		}
		if !retryable(err) || ctx.Err() != nil {
			return nil, err
		}
		s.splits.Add(1)
		s.record("batch_split", 0, false)
	}
	return kv.GetMultiVersioned(ctx, unbatchedVersioned{Store: unbatched{s}, Versioned: s}, keys)
}
