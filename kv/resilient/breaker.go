package resilient

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker trips after `threshold` consecutive failed attempts, rejects
// traffic for `cooldown`, then admits a single probe; the probe's outcome
// decides between closing again and re-opening. A threshold of 0 disables
// the breaker entirely.
//
// "Consecutive" is attempt-level, not operation-level: a retried operation
// whose first attempt fails and second succeeds resets the streak, because
// the store evidently recovered.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       int64
	rejects     int64
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether an attempt may proceed. In the open state it starts
// admitting one probe per cooldown window.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return true
		}
		b.rejects++
		return false
	default: // half-open: one probe in flight at a time
		if b.probing {
			b.rejects++
			return false
		}
		b.probing = true
		return true
	}
}

// observe records the outcome of an admitted attempt.
func (b *breaker) observe(ok bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case ok:
		b.state = breakerClosed
		b.consecutive = 0
		b.probing = false
	case b.state == breakerHalfOpen:
		// Failed probe: back to open for another cooldown.
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
	default:
		b.consecutive++
		if b.consecutive >= b.threshold && b.state == breakerClosed {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.trips++
		}
	}
}

// snapshot returns (trips, rejects) so far.
func (b *breaker) snapshot() (int64, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.rejects
}
