package resilient_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"edsc/kv"
	"edsc/kv/faulty"
	"edsc/kv/kvtest"
	"edsc/kv/resilient"
	"edsc/monitor"
)

func TestRetryMasksFailFirstN(t *testing.T) {
	ctx := context.Background()
	inner := kv.NewMem("m")
	if err := inner.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s := resilient.New(faulty.New(inner, faulty.Options{FailFirstN: 3}), resilient.Options{
		MaxRetries: 4, BaseBackoff: 100 * time.Microsecond,
	})
	v, err := s.Get(ctx, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v; want v, nil", v, err)
	}
	if st := s.Stats(); st.Retries != 3 {
		t.Fatalf("Retries = %d, want 3", st.Retries)
	}
}

func TestSentinelsNotRetried(t *testing.T) {
	ctx := context.Background()
	s := resilient.New(kv.NewMem("m"), resilient.Options{BaseBackoff: 100 * time.Microsecond})
	if _, err := s.Get(ctx, "missing"); !kv.IsNotFound(err) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := s.Get(ctx, ""); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("err = %v, want ErrEmptyKey", err)
	}
	if st := s.Stats(); st.Retries != 0 {
		t.Fatalf("retried a definitive answer %d times", st.Retries)
	}
}

func TestWritesNotRetriedWithoutOptIn(t *testing.T) {
	ctx := context.Background()
	s := resilient.New(faulty.New(kv.NewMem("m"), faulty.Options{FailFirstN: 1}), resilient.Options{
		BaseBackoff: 100 * time.Microsecond,
	})
	if err := s.Put(ctx, "k", []byte("v")); !errors.Is(err, faulty.ErrInjected) {
		t.Fatalf("err = %v, want the injected failure surfaced", err)
	}
	if st := s.Stats(); st.Retries != 0 {
		t.Fatalf("blind write retried %d times without RetryWrites", st.Retries)
	}

	s = resilient.New(faulty.New(kv.NewMem("m"), faulty.Options{FailFirstN: 1}), resilient.Options{
		RetryWrites: true, BaseBackoff: 100 * time.Microsecond,
	})
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("opted-in write retry failed: %v", err)
	}
	if st := s.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

func TestDeleteIdempotencyRule(t *testing.T) {
	ctx := context.Background()
	// First-attempt ErrNotFound is reported verbatim.
	s := resilient.New(kv.NewMem("m"), resilient.Options{RetryWrites: true, BaseBackoff: 100 * time.Microsecond})
	if err := s.Delete(ctx, "missing"); !kv.IsNotFound(err) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}

	// A delete that applied but reported failure (lost ack) succeeds on
	// retry even though the key is then already gone.
	inner := kv.NewMem("m")
	if err := inner.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s = resilient.New(faulty.New(inner, faulty.Options{Seed: 1, ErrAfter: 1}), resilient.Options{
		RetryWrites: true, BaseBackoff: 100 * time.Microsecond,
	})
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatalf("ambiguous delete not masked: %v", err)
	}
	if ok, _ := inner.Contains(ctx, "k"); ok {
		t.Fatal("key survived the delete")
	}
}

func TestBreakerTripAndRecovery(t *testing.T) {
	ctx := context.Background()
	inner := kv.NewMem("m")
	if err := inner.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s := resilient.New(faulty.New(inner, faulty.Options{FailFirstN: 3}), resilient.Options{
		MaxRetries: -1, BreakerThreshold: 3, BreakerCooldown: 2 * time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		if _, err := s.Get(ctx, "k"); !errors.Is(err, faulty.ErrInjected) {
			t.Fatalf("op %d: err = %v, want ErrInjected", i, err)
		}
	}
	// Threshold reached: the breaker fails fast without touching the store.
	if _, err := s.Get(ctx, "k"); !errors.Is(err, resilient.ErrBreakerOpen) {
		t.Fatalf("err = %v, want resilient.ErrBreakerOpen", err)
	}
	st := s.Stats()
	if st.BreakerTrips != 1 || st.BreakerRejects < 1 {
		t.Fatalf("Stats = %+v, want 1 trip and >=1 reject", st)
	}
	// After the cooldown a probe goes through; the fault budget is spent,
	// so it succeeds and closes the breaker.
	time.Sleep(5 * time.Millisecond)
	if v, err := s.Get(ctx, "k"); err != nil || string(v) != "v" {
		t.Fatalf("probe Get = %q, %v", v, err)
	}
	if _, err := s.Get(ctx, "k"); err != nil {
		t.Fatalf("breaker did not close after successful probe: %v", err)
	}
}

// slowOnce delays the first Get long enough for the hedge to win.
type slowOnce struct {
	kv.Store
	calls atomic.Int64
	delay time.Duration
}

func (s *slowOnce) Get(ctx context.Context, key string) ([]byte, error) {
	if s.calls.Add(1) == 1 {
		t := time.NewTimer(s.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.Store.Get(ctx, key)
}

func TestHedgedReadWins(t *testing.T) {
	ctx := context.Background()
	inner := kv.NewMem("m")
	if err := inner.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	rec := monitor.New("m", 16)
	s := resilient.New(&slowOnce{Store: inner, delay: 200 * time.Millisecond}, resilient.Options{
		HedgeDelay: 2 * time.Millisecond, Recorder: rec,
	})
	start := time.Now()
	v, err := s.Get(ctx, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("hedge did not cut the tail: Get took %v", elapsed)
	}
	st := s.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("Stats = %+v, want 1 hedge and 1 win", st)
	}
	found := false
	for _, op := range rec.Snapshot(false).Ops {
		if op.Op == "hedge" && op.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("hedge not reported through the Recorder")
	}
}

func TestHedgeFirstResponseFailureWaitsForStraggler(t *testing.T) {
	ctx := context.Background()
	inner := kv.NewMem("m")
	if err := inner.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// The first attempt stalls, the hedge fires and fails (FailFirstN hits
	// the hedge because it reaches the injector second... so instead: fail
	// the *first* injector call and stall nothing — the hedge then succeeds
	// while the first response was the failure).
	f := faulty.New(inner, faulty.Options{FailFirstN: 1, PSpike: 1, Spike: 10 * time.Millisecond})
	s := resilient.New(f, resilient.Options{MaxRetries: -1, HedgeDelay: time.Millisecond})
	v, err := s.Get(ctx, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v; a failed first response should fall through to the hedge", v, err)
	}
}

func TestRecorderCountsRetries(t *testing.T) {
	ctx := context.Background()
	inner := kv.NewMem("m")
	if err := inner.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	rec := monitor.New("m", 16)
	s := resilient.New(faulty.New(inner, faulty.Options{FailFirstN: 2}), resilient.Options{
		Recorder: rec, BaseBackoff: 100 * time.Microsecond,
	})
	if _, err := s.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	for _, op := range rec.Snapshot(false).Ops {
		if op.Op == "retry" && op.Count == 2 {
			return
		}
	}
	t.Fatalf("retry count not visible in snapshot: %+v", rec.Snapshot(false).Ops)
}

func TestContextCancelled(t *testing.T) {
	s := resilient.New(kv.NewMem("m"), resilient.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Get(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := s.Put(ctx, "k", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCancelDuringBackoff(t *testing.T) {
	inner := kv.NewMem("m")
	s := resilient.New(faulty.New(inner, faulty.Options{FailFirstN: 100}), resilient.Options{
		MaxRetries: 100, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Get(ctx, "k")
	if err == nil {
		t.Fatal("Get succeeded against a dead store")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation ignored during backoff: took %v", elapsed)
	}
}

func TestPutIfVersionUnsupported(t *testing.T) {
	ctx := context.Background()
	// faulty.Store does not implement kv.CompareAndPut.
	s := resilient.New(faulty.New(kv.NewMem("m"), faulty.Options{}), resilient.Options{})
	if _, err := s.PutIfVersion(ctx, "k", []byte("v"), kv.NoVersion); err == nil {
		t.Fatal("PutIfVersion succeeded on a store without CAS support")
	}
}

func TestConformance(t *testing.T) {
	kvtest.Run(t, func(t *testing.T) (kv.Store, func()) {
		s := resilient.New(kv.NewMem("m"), resilient.Options{RetryWrites: true})
		return s, func() { s.Close() }
	}, kvtest.Options{})
}

func TestCompareAndPutConformance(t *testing.T) {
	// PutIfVersion passes through the retry loop; the CAS contract must
	// survive it untouched.
	kvtest.RunCompareAndPut(t, func(t *testing.T) (kv.Store, func()) {
		s := resilient.New(kv.NewMem("m"), resilient.Options{})
		return s, func() { s.Close() }
	})
}

func TestChaos(t *testing.T) {
	// The wrapper wrapped in the suite's own injector+wrapper sandwich: a
	// doubly-resilient stack must still be linearizable per key.
	kvtest.RunChaos(t, func(t *testing.T) (kv.Store, func()) {
		return resilient.New(kv.NewMem("m"), resilient.Options{}), nil
	}, kvtest.ChaosOptions{})
}
