// Package resilient wraps any kv.Store with the client-side fault masking
// the paper's measurements call for (§II, §V): per-operation timeouts,
// capped exponential backoff with jitter, idempotency-aware retries, a
// circuit breaker, and hedged reads against tail latency — the cloud-store
// variability §V reports for Cloud Store 1 is exactly the distribution
// hedging attacks. Every recovery action is reported through an optional
// monitor.Recorder, so retry storms and breaker trips show up in the same
// snapshots as ordinary operation latencies.
//
// Retry policy. Reads (Get, Contains, Keys, Len) are always safe to retry
// and always are. Blind writes (Put, Delete, Clear) are retried only when
// Options.RetryWrites is set, because a transient error is ambiguous — the
// write may have taken effect — and retrying is only sound when the caller
// knows its writes are idempotent (full-value Put and Delete are; callers
// doing read-modify-write should use PutIfVersion instead). Conditional
// writes (PutIfVersion) are always retried: the version check makes a
// duplicate apply impossible, though an ambiguous failure can surface as
// kv.ErrVersionMismatch, which callers of CAS must already handle.
//
// Delete gets one extra idempotency rule: when an earlier attempt failed
// transiently and a later attempt reports kv.ErrNotFound, the delete is
// treated as successful — the earlier attempt evidently took effect. A
// first-attempt ErrNotFound is still reported verbatim.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"edsc/kv"
	"edsc/monitor"
)

// ErrBreakerOpen reports an operation rejected without reaching the store
// because the circuit breaker is open.
var ErrBreakerOpen = errors.New("resilient: circuit breaker open")

// Options tune the wrapper. The zero value retries reads a few times with
// small backoff and disables timeouts, hedging, and the breaker.
type Options struct {
	// OpTimeout bounds each individual attempt (0 = unbounded). The
	// caller's context still bounds the operation as a whole.
	OpTimeout time.Duration

	// MaxRetries is how many additional attempts follow a failed first one
	// (default 4; negative disables retries).
	MaxRetries int

	// BaseBackoff is the first retry's delay (default 1ms); each further
	// retry doubles it up to MaxBackoff (default 100ms). The actual sleep
	// is uniformly jittered in [d/2, d) so synchronized clients do not
	// retry in lockstep.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// RetryWrites opts blind writes (Put, Delete, Clear) into the retry
	// policy. Leave false unless writes are idempotent (see package doc).
	RetryWrites bool

	// HedgeDelay enables hedged Gets: when the first attempt has not
	// answered within this delay, a second concurrent attempt starts and
	// the first response wins (0 disables). Hedging applies only to Get —
	// the one hot-path, side-effect-free operation tail latency hurts most.
	HedgeDelay time.Duration

	// BreakerThreshold trips the circuit breaker after this many
	// consecutive failed attempts (0 disables). While open, operations
	// fail fast with ErrBreakerOpen.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting
	// a probe (default 1s).
	BreakerCooldown time.Duration

	// Recorder, when set, receives one observation per recovery action:
	// "retry" (latency = the backoff served), "hedge", and "breaker_open".
	Recorder *monitor.Recorder

	// Seed makes backoff jitter reproducible (0 uses a fixed default).
	Seed int64
}

// Stats are cumulative counters of recovery actions.
type Stats struct {
	Retries        int64 // attempts beyond the first
	Hedges         int64 // hedged Gets launched
	HedgeWins      int64 // hedges whose response arrived first
	Timeouts       int64 // attempts cut off by OpTimeout
	BreakerTrips   int64 // closed->open (or failed probe) transitions
	BreakerRejects int64 // operations rejected while open
	BatchSplits    int64 // multi-key calls degraded to per-key operations
}

// Store is the resilience wrapper. It implements kv.Store and intercepts
// the whole kv data path — kv.Batch, kv.Versioned, kv.VersionedBatch, and
// kv.CompareAndPut — with retries whenever the inner stack supports the
// capability (see Intercepts). Capabilities it does not intercept are
// discovered through Unwrap by the kv.As walk.
type Store struct {
	inner   kv.Store
	opts    Options
	breaker *breaker

	rngMu sync.Mutex
	rng   *rand.Rand

	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	timeouts  atomic.Int64
	splits    atomic.Int64
}

var _ kv.Store = (*Store)(nil)

// New wraps inner.
func New(inner kv.Store, opts Options) *Store {
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 4
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 100 * time.Millisecond
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Store{
		inner:   inner,
		opts:    opts,
		breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, nil),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Layer adapts the wrapper to the kv middleware model, so a resilient stage
// drops into a kv.Stack pipeline:
//
//	kv.Stack(base, resilient.Layer(opts), dscl.Layer(...))
func Layer(opts Options) kv.Layer {
	return func(inner kv.Store) kv.Store { return New(inner, opts) }
}

// Inner returns the wrapped store (for native capabilities beyond kv.Store).
func (s *Store) Inner() kv.Store { return s.inner }

// Unwrap implements kv.Wrapper: capabilities the wrapper does not intercept
// (kv.Expiring, kv.SQL — native escape hatches with no degraded mode worth
// adding retries to by default) are discovered through the kv.As walk.
func (s *Store) Unwrap() kv.Store { return s.inner }

// Intercepts implements kv.Interceptor. The wrapper's method set statically
// covers the whole kv data path (Batch, Versioned, VersionedBatch,
// CompareAndPut) so that retries and the breaker guard every data operation,
// but a capability is only claimed when the inner stack can actually serve
// it — otherwise the kv.As walk keeps looking (and finds nothing, exactly as
// if the wrapper were not there).
func (s *Store) Intercepts(capability any) bool {
	switch capability.(type) {
	case *kv.Batch:
		return true // native pass-through or retried per-key fan-out
	case *kv.Versioned, *kv.VersionedBatch:
		_, ok := kv.As[kv.Versioned](s.inner)
		return ok
	case *kv.CompareAndPut:
		_, ok := kv.As[kv.CompareAndPut](s.inner)
		return ok
	}
	return true
}

// Stats returns a snapshot of the recovery counters.
func (s *Store) Stats() Stats {
	trips, rejects := s.breaker.snapshot()
	return Stats{
		Retries:        s.retries.Load(),
		Hedges:         s.hedges.Load(),
		HedgeWins:      s.hedgeWins.Load(),
		Timeouts:       s.timeouts.Load(),
		BreakerTrips:   trips,
		BreakerRejects: rejects,
		BatchSplits:    s.splits.Load(),
	}
}

// RegisterMetrics exports the wrapper's recovery counters through reg as
// the counter family edsc_resilience_events_total{store,event} with events
// retry, hedge, hedge_win, timeout, breaker_trip, and breaker_reject —
// PR 1's resilience work, visible on the same /metrics page as the
// latency histograms.
func (s *Store) RegisterMetrics(reg *monitor.Registry) {
	reg.RegisterCounters("edsc_resilience_events_total",
		map[string]string{"store": s.Name()},
		func() map[string]int64 {
			st := s.Stats()
			return map[string]int64{
				"retry":          st.Retries,
				"hedge":          st.Hedges,
				"hedge_win":      st.HedgeWins,
				"timeout":        st.Timeouts,
				"breaker_trip":   st.BreakerTrips,
				"breaker_reject": st.BreakerRejects,
				"batch_split":    st.BatchSplits,
			}
		})
}

// Name implements kv.Store. The wrapper is transparent: monitoring and
// registries see the inner store's name.
func (s *Store) Name() string { return s.inner.Name() }

// record reports one recovery action to the attached Recorder.
func (s *Store) record(action string, latency time.Duration, failed bool) {
	if s.opts.Recorder != nil {
		s.opts.Recorder.Record(action, latency, 0, failed)
	}
}

// retryable reports whether err is worth another attempt: any failure that
// is not a definitive store answer (absent key, lost CAS race, bad key),
// not a closed store, and not the caller giving up.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, kv.ErrNotFound) || errors.Is(err, kv.ErrVersionMismatch) ||
		errors.Is(err, kv.ErrEmptyKey) || errors.Is(err, kv.ErrClosed) {
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// healthy reports whether the attempt outcome counts as a working store for
// breaker purposes. Definitive answers (including ErrNotFound) are healthy;
// transient failures are not.
func healthy(err error) bool {
	return err == nil || !retryable(err)
}

// backoff computes the jittered delay before retry number `attempt` (0-based).
func (s *Store) backoff(attempt int) time.Duration {
	d := s.opts.BaseBackoff << uint(attempt)
	if d <= 0 || d > s.opts.MaxBackoff {
		d = s.opts.MaxBackoff
	}
	s.rngMu.Lock()
	jittered := d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
	s.rngMu.Unlock()
	return jittered
}

// attempt runs fn once under the per-attempt timeout.
func (s *Store) attempt(ctx context.Context, fn func(context.Context) error) error {
	actx, cancel := ctx, func() {}
	if s.opts.OpTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, s.opts.OpTimeout)
	}
	err := fn(actx)
	cancel()
	if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		s.timeouts.Add(1)
	}
	return err
}

// do is the retry loop shared by every operation. retries is the number of
// additional attempts allowed for this operation class.
func (s *Store) do(ctx context.Context, op string, retries int, fn func(context.Context) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var err error
	for attempt := 0; ; attempt++ {
		if !s.breaker.allow() {
			s.record("breaker_open", 0, true)
			monitor.AddSpan(ctx, "resilient", op+" breaker_open", time.Now(), true)
			return fmt.Errorf("%w (%s)", ErrBreakerOpen, op)
		}
		attemptStart := time.Now()
		err = s.attempt(ctx, fn)
		s.breaker.observe(healthy(err))
		if err == nil || !retryable(err) || ctx.Err() != nil || attempt >= retries {
			return err
		}
		// The failed attempt will be retried: leave a span so a slow
		// request's trace shows each recovery step.
		monitor.AddSpan(ctx, "resilient", fmt.Sprintf("%s attempt %d", op, attempt+1), attemptStart, true)
		d := s.backoff(attempt)
		s.retries.Add(1)
		s.record("retry", d, false)
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return err
		}
		t.Stop()
	}
}

// readRetries / writeRetries pick the budget per operation class.
func (s *Store) readRetries() int { return s.opts.MaxRetries }
func (s *Store) writeRetries() int {
	if s.opts.RetryWrites {
		return s.opts.MaxRetries
	}
	return 0
}

// Get implements kv.Store with retries and (when enabled) hedging.
func (s *Store) Get(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := s.do(ctx, "get", s.readRetries(), func(actx context.Context) error {
		v, err := s.hedgedGet(actx, key)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// hedgedGet issues the inner Get, launching a second concurrent attempt if
// the first has not answered within HedgeDelay. The first response wins;
// when the first response is an error, the other attempt's answer is
// awaited before giving up (it may still succeed).
func (s *Store) hedgedGet(ctx context.Context, key string) ([]byte, error) {
	if s.opts.HedgeDelay <= 0 {
		return s.inner.Get(ctx, key)
	}
	type result struct {
		hedge bool
		v     []byte
		err   error
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap the losing attempt
	ch := make(chan result, 2)
	launch := func(hedge bool) {
		v, err := s.inner.Get(cctx, key)
		ch <- result{hedge, v, err}
	}
	firstStart := time.Now()
	go launch(false)

	timer := time.NewTimer(s.opts.HedgeDelay)
	defer timer.Stop()
	inFlight := 1
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
		s.hedges.Add(1)
		s.record("hedge", s.opts.HedgeDelay, false)
		monitor.AddSpan(ctx, "resilient", "get hedge", firstStart, false)
		go launch(true)
		inFlight = 2
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	var last result
	for i := 0; i < inFlight; i++ {
		select {
		case r := <-ch:
			last = r
			if r.err == nil || i == inFlight-1 {
				if r.err == nil && r.hedge {
					s.hedgeWins.Add(1)
				}
				return r.v, r.err
			}
			// First responder failed; wait for the straggler.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return last.v, last.err
}

// Put implements kv.Store. Retried only with RetryWrites (see package doc).
func (s *Store) Put(ctx context.Context, key string, value []byte) error {
	return s.do(ctx, "put", s.writeRetries(), func(actx context.Context) error {
		return s.inner.Put(actx, key, value)
	})
}

// Delete implements kv.Store, with the delete idempotency rule: ErrNotFound
// after a transient failure means an earlier attempt applied.
func (s *Store) Delete(ctx context.Context, key string) error {
	failedOnce := false
	return s.do(ctx, "delete", s.writeRetries(), func(actx context.Context) error {
		err := s.inner.Delete(actx, key)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, kv.ErrNotFound) && failedOnce:
			return nil
		case retryable(err):
			failedOnce = true
		}
		return err
	})
}

// PutIfVersion forwards kv.CompareAndPut with retries (safe: the version
// check prevents duplicate effects). It fails when the inner store does not
// support conditional writes.
func (s *Store) PutIfVersion(ctx context.Context, key string, value []byte, since kv.Version) (kv.Version, error) {
	cas, ok := kv.As[kv.CompareAndPut](s.inner)
	if !ok {
		return kv.NoVersion, &kv.StoreError{Store: s.Name(), Op: "cas", Key: key,
			Err: errors.New("resilient: inner store does not implement kv.CompareAndPut")}
	}
	var out kv.Version
	err := s.do(ctx, "cas", s.opts.MaxRetries, func(actx context.Context) error {
		v, err := cas.PutIfVersion(actx, key, value, since)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	if err != nil {
		return kv.NoVersion, err
	}
	return out, nil
}

// Contains implements kv.Store.
func (s *Store) Contains(ctx context.Context, key string) (bool, error) {
	var out bool
	err := s.do(ctx, "contains", s.readRetries(), func(actx context.Context) error {
		ok, err := s.inner.Contains(actx, key)
		if err != nil {
			return err
		}
		out = ok
		return nil
	})
	if err != nil {
		return false, err
	}
	return out, nil
}

// Keys implements kv.Store.
func (s *Store) Keys(ctx context.Context) ([]string, error) {
	var out []string
	err := s.do(ctx, "keys", s.readRetries(), func(actx context.Context) error {
		ks, err := s.inner.Keys(actx)
		if err != nil {
			return err
		}
		out = ks
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Len implements kv.Store.
func (s *Store) Len(ctx context.Context) (int, error) {
	var out int
	err := s.do(ctx, "len", s.readRetries(), func(actx context.Context) error {
		n, err := s.inner.Len(actx)
		if err != nil {
			return err
		}
		out = n
		return nil
	})
	if err != nil {
		return 0, err
	}
	return out, nil
}

// Clear implements kv.Store. Clearing twice is idempotent, so it shares the
// write-retry budget.
func (s *Store) Clear(ctx context.Context) error {
	return s.do(ctx, "clear", s.writeRetries(), func(actx context.Context) error {
		return s.inner.Clear(actx)
	})
}

// Close implements kv.Store.
func (s *Store) Close() error { return s.inner.Close() }
