package kv

// Composable store middleware. Every enhancement layer in this repository —
// resilience, caching, transforms, monitoring — wraps a Store in another
// Store. This file defines the one model through which those wrappers
// compose and through which capabilities (Versioned, Batch, Expiring, SQL,
// CompareAndPut) survive wrapping by construction:
//
//   - Wrapper exposes the next store down, the way errors.Unwrap exposes the
//     next error.
//   - As walks the wrap chain the way errors.As walks error chains, so a
//     capability implemented anywhere in the stack is discoverable from the
//     top.
//   - Layer and Stack are the net/http-middleware idiom for building the
//     stack in the first place.
//
// The intercept-vs-passthrough rule. A layer that must see a capability's
// calls to stay correct — a transform re-encoding Versioned reads, a
// resilience wrapper retrying conditional writes — implements the interface
// itself and *wins* the As walk. A layer with nothing to add simply exposes
// Unwrap and the walk falls through to whoever does implement it. A layer
// whose static method set is broader than what its configuration supports
// additionally implements Interceptor to decline capabilities per instance.

// Wrapper is implemented by store middleware that wraps another Store.
// Unwrap returns the wrapped store, or nil when the wrapper must not be
// bypassed (a delta-encoded client, for instance, owns the physical layout:
// reaching the raw store underneath it would read garbage).
type Wrapper interface {
	Unwrap() Store
}

// Interceptor refines the As walk for wrappers whose Go method set is
// broader than what one configured instance actually supports (interfaces
// are static; configuration is not). As consults Intercepts with a typed
// nil pointer to the capability interface — (*Versioned)(nil),
// (*Batch)(nil), ... — before trusting a type assertion on the wrapper.
// Returning false sends the walk onward to the wrapped store. Wrappers that
// do not implement Interceptor intercept everything their type implements.
type Interceptor interface {
	Intercepts(capability any) bool
}

// maxWrapDepth bounds the As walk so a cyclic chain cannot hang it.
const maxWrapDepth = 100

// As reports whether s, or any store it wraps, provides capability T, and
// returns the shallowest provider. Like errors.As, it walks outward-in: a
// wrapper that implements (and intercepts) T answers before the stores it
// wraps, so layered semantics — retried CAS, transform-aware versioned
// reads — are preserved. The walk stops at any store that neither provides
// T nor implements Wrapper, and at a Wrapper whose Unwrap returns nil.
//
// T must be an interface type (typically one of the kv capability
// interfaces: Versioned, Batch, VersionedBatch, Expiring, SQL,
// CompareAndPut — or Store itself).
func As[T any](s Store) (T, bool) {
	for depth := 0; s != nil && depth < maxWrapDepth; depth++ {
		if t, ok := s.(T); ok {
			ic, gated := s.(Interceptor)
			if !gated || ic.Intercepts((*T)(nil)) {
				return t, true
			}
		}
		w, ok := s.(Wrapper)
		if !ok {
			break
		}
		s = w.Unwrap()
	}
	var zero T
	return zero, false
}

// A Layer is store middleware: it takes a store and returns an enhanced
// store wrapping it, the way net/http middleware wraps handlers.
type Layer func(Store) Store

// Stack composes layers over base. Layers apply in order, so layers[0] is
// the innermost wrapper (closest to the base store) and the last layer is
// the outermost (the store the caller holds and the first to see every
// operation):
//
//	Stack(base, resilient, cache) == cache(resilient(base))
//
// Nil layers are skipped, so optional layers can be built conditionally.
func Stack(base Store, layers ...Layer) Store {
	s := base
	for _, l := range layers {
		if l == nil {
			continue
		}
		s = l(s)
	}
	return s
}
