package edsc

// Integration tests: cross-module scenarios assembling the full stack the
// way a downstream application would — enhanced clients over real
// substrates (TCP cache server, HTTP cloud store, SQL engine, file system),
// registered with the UDSM, exercised through sync and async interfaces.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edsc/dscl"
	"edsc/future"
	"edsc/kv"
	"edsc/kv/kvtest"
	"edsc/kv/resilient"
	"edsc/monitor"
	"edsc/udsm"
	"edsc/workload"
)

// startStack launches the in-process servers shared by these tests.
func startStack(t *testing.T) (redisAddr, cloudURL string) {
	t.Helper()
	redis, err := udsm.StartMiniRedis(udsm.MiniRedisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = redis.Close() })
	cloud, err := udsm.StartCloudSim(udsm.ProfileLocal, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cloud.Close() })
	return redis.Addr(), cloud.URL()
}

// TestEnhancedClientConformanceOverRealSubstrates runs the full kv.Store
// contract against a DSCL client (cache + compression + encryption) layered
// over each real store implementation.
func TestEnhancedClientConformanceOverRealSubstrates(t *testing.T) {
	redisAddr, cloudURL := startStack(t)
	key := bytes.Repeat([]byte{0x42}, dscl.KeySize)

	enhance := func(base kv.Store) kv.Store {
		return dscl.New(base,
			dscl.WithCache(dscl.NewInProcessCache(dscl.InProcessOptions{CopyOnCache: true})),
			dscl.WithCompression(dscl.CompressionOptions{}),
			dscl.WithEncryption(key),
		)
	}

	n := 0
	factories := map[string]func(t *testing.T) (kv.Store, func()){
		"miniredis": func(t *testing.T) (kv.Store, func()) {
			n++
			return enhance(udsm.OpenMiniRedis("redis", redisAddr, fmt.Sprintf("c%d:", n))), nil
		},
		"cloudsim": func(t *testing.T) (kv.Store, func()) {
			n++
			return enhance(udsm.OpenCloudStore("cloud", cloudURL, fmt.Sprintf("bucket%d", n))), nil
		},
		"minisql": func(t *testing.T) (kv.Store, func()) {
			st, err := udsm.OpenSQLStore("sql", udsm.SQLStoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return enhance(st), nil
		},
		"fsstore": func(t *testing.T) (kv.Store, func()) {
			st, err := udsm.OpenFileStore("fs", t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return enhance(st), nil
		},
	}
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			kvtest.Run(t, factory, kvtest.Options{MaxValue: 64 << 10, SkipConcurrency: name == "cloudsim"})
		})
	}
}

// TestFullStackSecureCachedCloud assembles the paper's flagship deployment:
// compressed, encrypted, cached access to a cloud store with revalidation,
// registered in a UDSM for monitoring and async access.
func TestFullStackSecureCachedCloud(t *testing.T) {
	_, cloudURL := startStack(t)
	ctx := context.Background()

	raw := udsm.OpenCloudStore("cloud", cloudURL, "prod")
	client := dscl.New(raw,
		dscl.WithCompression(dscl.CompressionOptions{}),
		dscl.WithTransform(dscl.EncryptionFromPassphrase("integration")),
		dscl.WithCache(dscl.NewInProcessCache(dscl.InProcessOptions{MaxEntries: 1024})),
		dscl.WithTTL(time.Hour),
	)

	mgr := udsm.New(udsm.Options{PoolSize: 4})
	defer mgr.Close()
	ds, err := mgr.Register(client)
	if err != nil {
		t.Fatal(err)
	}

	doc := bytes.Repeat([]byte("top secret payload "), 200)
	if _, err := ds.Async().Put(ctx, "doc", doc).MustWait(); err != nil {
		t.Fatal(err)
	}

	// At rest: ciphertext, and smaller than plaintext (compressed first).
	inspect := udsm.OpenCloudStore("inspect", cloudURL, "prod")
	stored, err := inspect.Get(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(stored, []byte("secret")) {
		t.Fatal("plaintext at rest")
	}
	if len(stored) >= len(doc) {
		t.Fatalf("no compression benefit: %d -> %d", len(doc), len(stored))
	}

	// Async read lands plaintext; second read is a cache hit.
	got, err := ds.Async().Get(ctx, "doc").MustWait()
	if err != nil || !bytes.Equal(got, doc) {
		t.Fatalf("async Get: %v", err)
	}
	if _, err := ds.Get(ctx, "doc"); err != nil {
		t.Fatal(err)
	}
	if client.Stats().CacheHits == 0 {
		t.Fatal("no cache hit through the full stack")
	}
	// Monitoring saw every operation.
	snap := ds.Snapshot(false)
	if len(snap.Ops) < 2 {
		t.Fatalf("monitor ops = %+v", snap.Ops)
	}
}

// TestCacheWarmRestartAcrossStores saves a hot cache into a file-system
// store and warms a new process's cache from it (§III persistence).
func TestCacheWarmRestartAcrossStores(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// "Process 1": populate a cache through normal traffic, then save.
	backing := kv.NewMem("backing")
	cache1 := dscl.NewInProcessCache(dscl.InProcessOptions{})
	client1 := dscl.New(backing, dscl.WithCache(cache1))
	for i := 0; i < 25; i++ {
		if err := client1.Put(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snapStore, err := udsm.OpenFileStore("cache-snapshot", filepath.Join(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := cache1.SaveTo(ctx, snapStore); err != nil || n != 25 {
		t.Fatalf("SaveTo = %d, %v", n, err)
	}

	// "Process 2": new cache, warmed from disk; reads hit without touching
	// the backing store.
	cache2 := dscl.NewInProcessCache(dscl.InProcessOptions{})
	if n, err := cache2.LoadFrom(ctx, snapStore); err != nil || n != 25 {
		t.Fatalf("LoadFrom = %d, %v", n, err)
	}
	deadBacking := kv.NewMem("dead")
	_ = deadBacking.Close() // prove reads never reach the store
	client2 := dscl.New(deadBacking, dscl.WithCache(cache2))
	for i := 0; i < 25; i++ {
		v, err := client2.Get(ctx, fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("warm read k%d = %q, %v", i, v, err)
		}
	}
}

// TestRemoteCacheSharedAcrossClients uses a miniredis-backed StoreCache as
// the shared remote cache for two enhanced clients over one cloud store —
// the §III benefit that "a remote process cache can be shared by multiple
// clients".
func TestRemoteCacheSharedAcrossClients(t *testing.T) {
	redisAddr, cloudURL := startStack(t)
	ctx := context.Background()

	newClient := func(name string) *dscl.Client {
		return dscl.New(udsm.OpenCloudStore(name, cloudURL, "shared"),
			dscl.WithCache(dscl.NewStoreCache(udsm.OpenMiniRedis(name+"-cache", redisAddr, "sharedcache:"))),
			dscl.WithTTL(time.Hour))
	}
	a := newClient("a")
	b := newClient("b")

	if err := a.Put(ctx, "warmed-by-a", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// b has never read this key, but a's write-through populated the shared
	// remote cache, so b's first read is already a hit.
	v, err := b.Get(ctx, "warmed-by-a")
	if err != nil || string(v) != "payload" {
		t.Fatalf("b Get = %q, %v", v, err)
	}
	if st := b.Stats(); st.CacheHits != 1 || st.StoreReads != 0 {
		t.Fatalf("b stats = %+v; want a shared-cache hit with no store read", st)
	}
}

// TestMultiStoreTxnAcrossSubstrates commits one transaction spanning a SQL
// store and a cache server (the §VII future-work feature over real
// substrates).
func TestMultiStoreTxnAcrossSubstrates(t *testing.T) {
	redisAddr, _ := startStack(t)
	ctx := context.Background()

	mgr := udsm.New(udsm.Options{})
	defer mgr.Close()
	sqlStore, err := udsm.OpenSQLStore("sql", udsm.SQLStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Register(sqlStore); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Register(udsm.OpenMiniRedis("redis", redisAddr, "txn:")); err != nil {
		t.Fatal(err)
	}

	if err := mgr.Txn().
		Put("sql", "order:9", []byte("paid")).
		Put("redis", "order:9", []byte("paid")).
		Commit(ctx); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sql", "redis"} {
		ds, _ := mgr.Store(name)
		if v, err := ds.Get(ctx, "order:9"); err != nil || string(v) != "paid" {
			t.Fatalf("%s: %q, %v", name, v, err)
		}
	}
}

// TestAsyncFanOutAcrossStores writes through futures to three stores at
// once and confirms callbacks and results.
func TestAsyncFanOutAcrossStores(t *testing.T) {
	redisAddr, cloudURL := startStack(t)
	ctx := context.Background()
	mgr := udsm.New(udsm.Options{PoolSize: 8})
	defer mgr.Close()

	sqlStore, err := udsm.OpenSQLStore("sql", udsm.SQLStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stores := []kv.Store{
		sqlStore,
		udsm.OpenMiniRedis("redis", redisAddr, "fan:"),
		udsm.OpenCloudStore("cloud", cloudURL, "fan"),
	}
	var futs []*future.Future[struct{}]
	for _, st := range stores {
		ds, err := mgr.Register(st)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, ds.Async().Put(ctx, "fanout", []byte(st.Name())))
	}
	if err := future.WaitAll(ctx, futs...); err != nil {
		t.Fatal(err)
	}
	for _, name := range mgr.Names() {
		ds, _ := mgr.Store(name)
		v, err := ds.Get(ctx, "fanout")
		if err != nil || string(v) != name {
			t.Fatalf("%s = %q, %v", name, v, err)
		}
	}
}

// TestDeltaClientOverCloudStore ships delta-encoded updates to the HTTP
// object store and verifies reconstruction by an independent client.
func TestDeltaClientOverCloudStore(t *testing.T) {
	_, cloudURL := startStack(t)
	ctx := context.Background()

	writer := dscl.New(udsm.OpenCloudStore("w", cloudURL, "docs"),
		dscl.WithDeltaEncoding(8, 4))
	doc := bytes.Repeat([]byte("versioned document content. "), 300)
	if err := writer.Put(ctx, "spec", doc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		doc = append([]byte(nil), doc...)
		copy(doc[i*700:], []byte(fmt.Sprintf("<rev%d>", i)))
		if err := writer.Put(ctx, "spec", doc); err != nil {
			t.Fatal(err)
		}
	}
	if writer.Stats().DeltaBytesSaved <= 0 {
		t.Fatal("no delta savings over the cloud store")
	}
	// A second client (fresh shadow state) reconstructs from the server.
	reader := dscl.New(udsm.OpenCloudStore("r", cloudURL, "docs"),
		dscl.WithDeltaEncoding(8, 4))
	got, err := reader.Get(ctx, "spec")
	if err != nil || !bytes.Equal(got, doc) {
		t.Fatalf("independent reconstruction failed: %v", err)
	}
}

// TestMonitoredWorkloadOnEnhancedClient runs the workload generator against
// an enhanced client registered in the UDSM — all three public layers in
// one call path.
func TestMonitoredWorkloadOnEnhancedClient(t *testing.T) {
	redisAddr, _ := startStack(t)
	ctx := context.Background()
	mgr := udsm.New(udsm.Options{})
	defer mgr.Close()

	client := dscl.New(udsm.OpenMiniRedis("redis", redisAddr, "wl:"),
		dscl.WithCache(dscl.NewInProcessCache(dscl.InProcessOptions{})))
	ds, err := mgr.Register(client)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mgr.RunWorkload(ctx, "redis", benchCfg(), client.Get)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) == 0 {
		t.Fatal("empty workload report")
	}
	for _, p := range rep.Points {
		if p.CachedRead == 0 {
			t.Fatal("cached read not measured")
		}
		if p.CachedRead >= p.Read*10 {
			t.Fatalf("cache hit (%v) slower than 10x the store read (%v)?", p.CachedRead, p.Read)
		}
	}
	if len(ds.Snapshot(false).Ops) == 0 {
		t.Fatal("workload left no monitoring trace")
	}
}

// benchCfg is a small workload config for integration tests.
func benchCfg() workload.Config {
	return workload.Config{Sizes: []int{256, 4096}, Runs: 2, OpsPerRun: 2}
}

// TestResilientCloudWorkloadUnderFaults is the resilience acceptance
// scenario: a cloud store whose server injects wire-level faults — every
// 10th request answered with HTTP 500, every 4th stalled 20ms — must
// complete a full workload run behind the resilience wrapper with zero
// client-visible errors, and the monitor must show the masking work
// (retries and hedged reads) that made that possible.
func TestResilientCloudWorkloadUnderFaults(t *testing.T) {
	ctx := context.Background()

	cloud, err := udsm.StartCloudSim(udsm.ProfileLocal, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cloud.Close() })
	cloud.SetFaults(udsm.CloudFaults{Every500: 10, EverySlow: 4, SlowBy: 20 * time.Millisecond, Seed: 1})

	rec := monitor.New("cloud", 64)
	store := resilient.New(udsm.OpenCloudStore("cloud", cloud.URL(), "prod"), resilient.Options{
		RetryWrites: true,
		MaxRetries:  8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		HedgeDelay:  2 * time.Millisecond,
		Recorder:    rec,
		Seed:        1,
	})
	defer store.Close()

	gen := workload.New(benchCfg())
	if _, err := gen.Run(ctx, store, nil); err != nil {
		t.Fatalf("workload run surfaced a fault the wrapper should have masked: %v", err)
	}

	if cloud.FaultsInjected() == 0 {
		t.Fatal("the server injected no faults — the scenario tested nothing")
	}
	st := store.Stats()
	if st.Retries == 0 {
		t.Fatalf("500s were injected but nothing was retried: %+v", st)
	}
	if st.Hedges == 0 {
		t.Fatalf("reads were stalled but no hedge fired: %+v", st)
	}
	var sawRetry, sawHedge bool
	for _, op := range rec.Snapshot(false).Ops {
		switch op.Op {
		case "retry":
			sawRetry = op.Count > 0
		case "hedge":
			sawHedge = op.Count > 0
		}
	}
	if !sawRetry || !sawHedge {
		t.Fatalf("monitor snapshot missing resilience ops: retry=%v hedge=%v (%+v)",
			sawRetry, sawHedge, rec.Snapshot(false).Ops)
	}
}

// TestMetricsEndpointAcceptance is the observability acceptance scenario: a
// cloudsim server under fault injection serves its /v1 API and, on the same
// listener, a /metrics endpoint aggregating the server-side per-op recorder,
// the client-side resilient store's recorder, and the wrapper's
// retry/hedge/breaker counters. After a workload runs through the full
// stack, one scrape must show per-op counts, latency histogram buckets, and
// nonzero resilience counters — and the UDSM's slow-trace retention must
// have produced span traces that reach down to individual HTTP attempts.
func TestMetricsEndpointAcceptance(t *testing.T) {
	ctx := context.Background()

	cloud, err := udsm.StartCloudSim(udsm.ProfileLocal, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cloud.Close() })
	cloud.SetFaults(udsm.CloudFaults{Every500: 10, EverySlow: 4, SlowBy: 5 * time.Millisecond, Seed: 1})

	rec := monitor.New("cloud", 64)
	store := resilient.New(udsm.OpenCloudStore("cloud", cloud.URL(), "prod"), resilient.Options{
		RetryWrites: true,
		MaxRetries:  8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		HedgeDelay:  2 * time.Millisecond,
		Recorder:    rec,
		Seed:        1,
	})
	// Everything scrapes from the cloud server's own endpoint: client-side
	// recorder and resilience counters ride on the server's registry.
	cloud.Metrics().Register(rec)
	store.RegisterMetrics(cloud.Metrics())

	// Trace every request (threshold 1ns) through the UDSM so the slow
	// buffer fills with spans from the resilient and HTTP layers.
	mgr := udsm.New(udsm.Options{SlowTrace: time.Nanosecond})
	defer mgr.Close()
	ds, err := mgr.Register(store)
	if err != nil {
		t.Fatal(err)
	}

	gen := workload.New(benchCfg())
	if _, err := gen.Run(ctx, ds, nil); err != nil {
		t.Fatalf("workload: %v", err)
	}
	if store.Stats().Retries == 0 {
		t.Fatal("no retries despite injected 500s — counters would test nothing")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(cloud.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		// Server-side per-op series from the cloudsim recorder.
		`edsc_op_total{store="cloudsim",op="get"}`,
		`edsc_op_total{store="cloudsim",op="put"}`,
		`edsc_op_latency_seconds_bucket{store="cloudsim",op="get",le=`,
		// Client-side series from the resilient wrapper's recorder.
		`edsc_op_total{store="cloud",op="retry"}`,
		// Resilience event counters.
		`edsc_resilience_events_total{store="cloud",event="retry"}`,
		`edsc_resilience_events_total{store="cloud",event="hedge"}`,
		`edsc_resilience_events_total{store="cloud",event="breaker_trip"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, `event="retry"} 0`) {
		t.Error("retry counter is zero on /metrics despite observed retries")
	}
	if t.Failed() {
		t.Fatalf("scrape:\n%s", body)
	}

	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars status = %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}

	// Slow-trace acceptance: traces were retained and carry request IDs and
	// spans from the layers below the UDSM.
	snap := ds.Snapshot(false)
	if len(snap.Slow) == 0 {
		t.Fatal("no slow traces retained with SlowTrace=1ns")
	}
	var sawDeepSpan bool
	for _, tr := range snap.Slow {
		if tr.ID == "" {
			t.Fatalf("trace without request ID: %+v", tr)
		}
		for _, sp := range tr.Spans {
			if sp.Layer == "http" || sp.Layer == "resilient" {
				sawDeepSpan = true
			}
		}
	}
	if !sawDeepSpan {
		t.Fatalf("no span from the http/resilient layers in %d traces", len(snap.Slow))
	}
}
