// Command sqlshell is an interactive shell for the embedded minisql engine
// — the "native interface" of the UDSM's SQL store, demonstrating that a
// key-value store backed by the engine coexists with direct SQL access.
//
// Usage:
//
//	sqlshell                 # volatile in-memory database
//	sqlshell -dir ./mydb     # durable database (WAL + snapshot)
//
// Statements end with ';'. Meta commands: .tables, .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"edsc/internal/minisql"
)

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	cmd := flag.String("c", "", "execute this semicolon-separated script and exit")
	flag.Parse()

	var (
		db  *minisql.Database
		err error
	)
	if *dir == "" {
		db = minisql.OpenMemory()
		fmt.Println("minisql shell (in-memory; use -dir for a durable database)")
	} else {
		db, err = minisql.Open(*dir, minisql.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlshell:", err)
			os.Exit(1)
		}
		fmt.Printf("minisql shell (database %s)\n", *dir)
	}
	defer db.Close()

	if *cmd != "" {
		for _, stmt := range splitScript(*cmd) {
			execute(db, stmt)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := "sql> "
	fmt.Print(prompt)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case ".quit", ".exit":
			return
		case ".tables":
			for _, t := range db.Tables() {
				fmt.Println(t)
			}
			fmt.Print(prompt)
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			fmt.Print("...> ")
			continue
		}
		execute(db, pending.String())
		pending.Reset()
		fmt.Print(prompt)
	}
}

// splitScript breaks a -c script on top-level semicolons (quotes respected
// by reusing the executor's own statement-at-a-time parsing: we split
// naively and let parse errors surface, which is fine for a dev shell).
func splitScript(script string) []string {
	parts := strings.Split(script, ";")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, p)
		}
	}
	return out
}

func execute(db *minisql.Database, sql string) {
	sql = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
	if sql == "" {
		return
	}
	if strings.HasPrefix(strings.ToUpper(sql), "SELECT") {
		res, err := db.Query(sql)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printResult(res)
		return
	}
	n, err := db.Exec(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows affected)\n", n)
}

func printResult(res *minisql.Result) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		rendered[r] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			if v.IsNull() {
				s = "NULL"
			}
			rendered[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	for i, c := range res.Columns {
		fmt.Printf("%-*s ", widths[i], c)
	}
	fmt.Println()
	for i := range res.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), " ")
	}
	fmt.Println()
	for _, row := range rendered {
		for i, s := range row {
			fmt.Printf("%-*s ", widths[i], s)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
