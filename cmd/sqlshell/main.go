// Command sqlshell is an interactive shell for the embedded minisql engine
// — the "native interface" of the UDSM's SQL store, demonstrating that a
// key-value store backed by the engine coexists with direct SQL access.
// Statements run through the registered "minisql" database/sql driver with
// prepared-statement '?' parameter binding.
//
// Usage:
//
//	sqlshell                              # volatile in-memory database
//	sqlshell :memory:?cache_pages=64      # in-memory, small page cache
//	sqlshell ./mydb                       # durable database directory
//	sqlshell './mydb?page_size=8192&cache_pages=512'
//
// Statements end with ';'. Bind '?' placeholders for the next statement
// with .bind:
//
//	sql> .bind 7 'alice'
//	sql> INSERT INTO users VALUES (?, ?);
//
// Meta commands:
//
//	.tables            list tables
//	.schema [table]    show CREATE statements
//	.pages             pager/file statistics (page size, counts, WAL bytes)
//	.cache             page-cache statistics (capacity, hits, evictions)
//	.bind [v ...]      set '?' params for the next statement (no args: clear)
//	.quit              exit
package main

import (
	"bufio"
	"database/sql"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"edsc/internal/minisql"
)

type shell struct {
	raw   *minisql.Database // engine handle for introspection meta-commands
	db    *sql.DB           // statement execution path (database/sql driver)
	binds []any             // pending '?' params for the next statement
}

func main() {
	dir := flag.String("dir", "", "database directory (deprecated; pass a DSN argument instead)")
	cmd := flag.String("c", "", "execute this semicolon-separated script and exit")
	flag.Parse()

	dsn := *dir
	if flag.NArg() > 0 {
		dsn = flag.Arg(0)
	}
	raw, err := minisql.OpenDSN(dsn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlshell:", err)
		os.Exit(1)
	}
	defer raw.Close()
	sh := &shell{raw: raw, db: sql.OpenDB(minisql.NewConnector(raw))}
	defer sh.db.Close()

	if dsn == "" || strings.HasPrefix(dsn, ":memory:") {
		fmt.Println("minisql shell (in-memory; pass a path DSN for a durable database)")
	} else {
		fmt.Printf("minisql shell (database %s)\n", dsn)
	}

	if *cmd != "" {
		for _, stmt := range splitScript(*cmd) {
			sh.execute(stmt)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := "sql> "
	fmt.Print(prompt)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if sh.meta(trimmed) {
				return
			}
			fmt.Print(prompt)
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			fmt.Print("...> ")
			continue
		}
		sh.execute(pending.String())
		pending.Reset()
		fmt.Print(prompt)
	}
}

// meta runs one dot-command; it reports whether the shell should exit.
func (sh *shell) meta(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".tables":
		for _, t := range sh.raw.Tables() {
			fmt.Println(t)
		}
	case ".schema":
		name := ""
		if len(fields) > 1 {
			name = fields[1]
		}
		ddl, err := sh.raw.Schema(name)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(ddl)
	case ".pages":
		st, err := sh.raw.Stats()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("page size:    %d bytes\n", st.PageSize)
		fmt.Printf("pages:        %d (%d on free list)\n", st.Pages, st.FreePages)
		fmt.Printf("file bytes:   %d\n", int64(st.Pages)*int64(st.PageSize))
		fmt.Printf("wal bytes:    %d\n", st.WALBytes)
	case ".cache":
		st, err := sh.raw.Stats()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("capacity:     %d pages\n", st.CacheCap)
		fmt.Printf("resident:     %d pages (%d dirty)\n", st.CacheUsed, st.DirtyPages)
		fmt.Printf("hits/misses:  %d/%d", st.Hits, st.Misses)
		if total := st.Hits + st.Misses; total > 0 {
			fmt.Printf(" (%.1f%% hit rate)", 100*float64(st.Hits)/float64(total))
		}
		fmt.Println()
		fmt.Printf("evictions:    %d\n", st.Evictions)
	case ".bind":
		sh.binds = sh.binds[:0]
		args, err := parseBindArgs(strings.TrimSpace(strings.TrimPrefix(line, ".bind")))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		sh.binds = args
		fmt.Printf("bound %d params for the next statement\n", len(args))
	case ".help":
		fmt.Println(".tables  .schema [table]  .pages  .cache  .bind [v ...]  .quit")
	default:
		fmt.Printf("unknown meta command %s (try .help)\n", fields[0])
	}
	return false
}

// parseBindArgs parses .bind arguments as SQL-ish literals: integers,
// floats, 'quoted text', x'hex' blobs, NULL, TRUE/FALSE; anything else is
// taken as raw text.
func parseBindArgs(s string) ([]any, error) {
	var out []any
	for s != "" {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		var tok string
		if s[0] == '\'' || (len(s) > 1 && (s[0] == 'x' || s[0] == 'X') && s[1] == '\'') {
			start := strings.IndexByte(s, '\'')
			// Find the closing quote, treating '' as an escaped quote.
			end := -1
			for i := start + 1; i < len(s); i++ {
				if s[i] != '\'' {
					continue
				}
				if i+1 < len(s) && s[i+1] == '\'' {
					i++ // skip the doubled quote
					continue
				}
				end = i
				break
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			tok, s = s[:end+1], s[end+1:]
		} else if i := strings.IndexByte(s, ' '); i >= 0 {
			tok, s = s[:i], s[i+1:]
		} else {
			tok, s = s, ""
		}
		out = append(out, literalValue(tok))
	}
	return out, nil
}

func literalValue(tok string) any {
	up := strings.ToUpper(tok)
	switch {
	case up == "NULL":
		return nil
	case up == "TRUE":
		return true
	case up == "FALSE":
		return false
	case strings.HasPrefix(tok, "'") && strings.HasSuffix(tok, "'") && len(tok) >= 2:
		return strings.ReplaceAll(tok[1:len(tok)-1], "''", "'")
	case (strings.HasPrefix(up, "X'")) && strings.HasSuffix(tok, "'"):
		hex := tok[2 : len(tok)-1]
		b := make([]byte, 0, len(hex)/2)
		for i := 0; i+1 < len(hex); i += 2 {
			var v byte
			fmt.Sscanf(hex[i:i+2], "%02x", &v)
			b = append(b, v)
		}
		return b
	default:
		if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
			return n
		}
		if f, err := strconv.ParseFloat(tok, 64); err == nil {
			return f
		}
		return tok
	}
}

// splitScript breaks a -c script on top-level semicolons (quotes respected
// by reusing the executor's own statement-at-a-time parsing: we split
// naively and let parse errors surface, which is fine for a dev shell).
func splitScript(script string) []string {
	parts := strings.Split(script, ";")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, p)
		}
	}
	return out
}

func (sh *shell) execute(query string) {
	query = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(query), ";"))
	if query == "" {
		return
	}
	args := sh.binds
	sh.binds = nil
	if strings.HasPrefix(strings.ToUpper(query), "SELECT") {
		rows, err := sh.db.Query(query, args...)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		defer rows.Close()
		printRows(rows)
		return
	}
	res, err := sh.db.Exec(query, args...)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	n, _ := res.RowsAffected()
	fmt.Printf("ok (%d rows affected)\n", n)
}

func printRows(rows *sql.Rows) {
	cols, err := rows.Columns()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	var rendered [][]string
	raw := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range raw {
		ptrs[i] = &raw[i]
	}
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			fmt.Println("error:", err)
			return
		}
		out := make([]string, len(cols))
		for i, v := range raw {
			s := renderCell(v)
			out[i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
		rendered = append(rendered, out)
	}
	if err := rows.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, c := range cols {
		fmt.Printf("%-*s ", widths[i], c)
	}
	fmt.Println()
	for i := range cols {
		fmt.Print(strings.Repeat("-", widths[i]), " ")
	}
	fmt.Println()
	for _, row := range rendered {
		for i, s := range row {
			fmt.Printf("%-*s ", widths[i], s)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(rendered))
}

func renderCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case []byte:
		return fmt.Sprintf("x'%x'", x)
	case bool:
		if x {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("%v", x)
	}
}
