// Command cloudsim-server runs a simulated cloud object store as a
// standalone process: the stand-in for the paper's "Cloud Store 1" and
// "Cloud Store 2" (§V), an HTTP object API with an injected WAN latency
// model.
//
// Usage:
//
//	cloudsim-server -addr 127.0.0.1:8080 -profile cloudstore1 -scale 1.0
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"edsc/internal/cloudsim"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		profile = flag.String("profile", "cloudstore1", "latency profile: cloudstore1, cloudstore2, local")
		scale   = flag.Float64("scale", 1.0, "latency scale factor (1.0 = paper magnitude)")
	)
	flag.Parse()

	var p cloudsim.Profile
	switch *profile {
	case "cloudstore1":
		p = cloudsim.CloudStore1(*scale)
	case "cloudstore2":
		p = cloudsim.CloudStore2(*scale)
	case "local":
		p = cloudsim.LocalProfile("local")
	default:
		fmt.Fprintf(os.Stderr, "cloudsim-server: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	srv := cloudsim.NewServer(p)
	if err := srv.StartAddr(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "cloudsim-server:", err)
		os.Exit(1)
	}
	fmt.Printf("cloudsim-server (%s, scale %.2f) at %s\n", *profile, *scale, srv.Addr())
	fmt.Printf("metrics at %s/metrics (pprof under /debug/pprof/)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	_ = srv.Close()
}
