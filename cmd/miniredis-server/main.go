// Command miniredis-server runs the repository's RESP-compatible cache
// server as a standalone process — the remote process cache of §III.
//
// Usage:
//
//	miniredis-server -addr 127.0.0.1:6379 -snapshot dump.mrdb -sweep 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edsc/internal/miniredis"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:6379", "listen address")
		snapshot = flag.String("snapshot", "", "snapshot file for SAVE/warm restart (empty = persistence off)")
		sweep    = flag.Duration("sweep", 30*time.Second, "expired-key sweep interval (0 = lazy expiry only)")
		metrics  = flag.String("metrics", "", "observability listen address for /metrics and /debug/pprof/ (empty = off)")
	)
	flag.Parse()

	srv := miniredis.NewServer(miniredis.ServerConfig{
		Addr:          *addr,
		SnapshotPath:  *snapshot,
		SweepInterval: *sweep,
		MetricsAddr:   *metrics,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "miniredis-server:", err)
		os.Exit(1)
	}
	fmt.Printf("miniredis-server listening on %s\n", srv.Addr())
	if *snapshot != "" {
		fmt.Printf("snapshot persistence: %s\n", *snapshot)
	}
	if a := srv.MetricsAddr(); a != "" {
		fmt.Printf("metrics at http://%s/metrics (pprof under /debug/pprof/)\n", a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "miniredis-server: shutdown:", err)
		os.Exit(1)
	}
}
