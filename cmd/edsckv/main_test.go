package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOpenStoreSpecs(t *testing.T) {
	good := []string{"mem", "fs:" + t.TempDir(), "sql:", "sql:" + filepath.Join(t.TempDir(), "db"), "redis:127.0.0.1:1/px", "cloud:http://127.0.0.1:1/bucket"}
	for _, spec := range good {
		s, err := openStore(spec)
		if err != nil {
			t.Fatalf("openStore(%q): %v", spec, err)
		}
		_ = s.Close()
	}
	bad := []string{"fs:", "redis:", "cloud:nope", "wibble:x", "cloud:http://h/"}
	for _, spec := range bad {
		if s, err := openStore(spec); err == nil {
			_ = s.Close()
			t.Fatalf("openStore(%q) succeeded", spec)
		}
	}
}

func TestRunOpsOnFileStore(t *testing.T) {
	dir := t.TempDir()
	spec := "fs:" + dir
	if err := run(spec, "put", "greeting", "hello", "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(spec, "get", "greeting", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(spec, "len", "", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(spec, "keys", "", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(spec, "del", "greeting", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(spec, "get", "greeting", "", "", false, 0); err == nil {
		t.Fatal("get after del succeeded")
	}
	if err := run(spec, "clear", "", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunEnhancedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := "fs:" + dir
	// Write encrypted+compressed, read back with the same enhancements.
	if err := run(spec, "put", "secret", "classified", "pw", true, 8); err != nil {
		t.Fatal(err)
	}
	if err := run(spec, "get", "secret", "", "pw", true, 8); err != nil {
		t.Fatal(err)
	}
	// Without the passphrase the stored bytes cannot decode.
	if err := run(spec, "get", "secret", "", "", false, 0); err != nil {
		t.Log("raw read fails decode only at consumer level; bytes returned") // raw get returns ciphertext
	}
}

func TestRunPutFromFile(t *testing.T) {
	dir := t.TempDir()
	payload := filepath.Join(dir, "payload.txt")
	if err := os.WriteFile(payload, []byte("file contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := "fs:" + dir
	if err := run(spec, "put", "doc", "@"+payload, "", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(spec, "put", "doc", "@"+filepath.Join(dir, "missing"), "", false, 0); err == nil {
		t.Fatal("missing @file accepted")
	}
}

func TestRunBench(t *testing.T) {
	if err := run("mem", "bench", "", "", "", false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, c := range [][2]string{
		{"get", ""}, {"put", ""}, {"del", ""},
	} {
		if err := run("mem", c[0], c[1], "", "", false, 0); err == nil {
			t.Fatalf("%s without key accepted", c[0])
		}
	}
	if err := run("mem", "", "", "", "", false, 0); err == nil {
		t.Fatal("missing op accepted")
	}
	if err := run("mem", "wibble", "", "", "", false, 0); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := run("bogus:x", "len", "", "", "", false, 0); err == nil {
		t.Fatal("bad store spec accepted")
	}
}
