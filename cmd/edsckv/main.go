// Command edsckv is a command-line key-value client for every store kind
// the UDSM supports — the "same code, any store" property as a shell tool.
//
// Store selection (-store):
//
//	mem                         volatile in-memory (useful with -op bench only)
//	fs:DIR                      file-system store rooted at DIR
//	sql:DIR                     embedded SQL store in DIR (sql: = in-memory)
//	redis:HOST:PORT[/PREFIX]    miniredis server
//	cloud:URL/BUCKET            cloudsim server
//
// Operations (-op): get, put, del, keys, len, clear, bench.
//
// Examples:
//
//	edsckv -store fs:/tmp/data -op put -key greeting -value hello
//	edsckv -store fs:/tmp/data -op get -key greeting
//	edsckv -store redis:127.0.0.1:6379 -op keys
//	edsckv -store sql:/tmp/db -op bench
//
// Optional enhancement flags apply the DSCL on top of any store:
// -encrypt PASSPHRASE, -compress, -cache N (in-process cache of N entries).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"edsc/dscl"
	"edsc/kv"
	"edsc/udsm"
	"edsc/workload"
)

func main() {
	var (
		storeSpec = flag.String("store", "mem", "store spec (see package comment)")
		op        = flag.String("op", "", "operation: get, put, del, keys, len, clear, bench")
		key       = flag.String("key", "", "key for get/put/del")
		value     = flag.String("value", "", "value for put (or @file to read a file)")
		encrypt   = flag.String("encrypt", "", "enable client-side encryption with this passphrase")
		compress  = flag.Bool("compress", false, "enable client-side compression")
		cacheN    = flag.Int("cache", 0, "attach an in-process cache of N entries")
	)
	flag.Parse()

	if err := run(*storeSpec, *op, *key, *value, *encrypt, *compress, *cacheN); err != nil {
		fmt.Fprintln(os.Stderr, "edsckv:", err)
		os.Exit(1)
	}
}

// openStore resolves a -store spec.
func openStore(spec string) (kv.Store, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	switch kind {
	case "mem":
		return udsm.NewMemStore("mem"), nil
	case "fs":
		if rest == "" {
			return nil, fmt.Errorf("fs store needs a directory: fs:DIR")
		}
		return udsm.OpenFileStore("fs", rest)
	case "sql":
		return udsm.OpenSQLStore("sql", udsm.SQLStoreOptions{Dir: rest})
	case "redis":
		addr, prefix, _ := strings.Cut(rest, "/")
		if addr == "" {
			return nil, fmt.Errorf("redis store needs an address: redis:HOST:PORT[/PREFIX]")
		}
		return udsm.OpenMiniRedis("redis", addr, prefix), nil
	case "cloud":
		i := strings.LastIndex(rest, "/")
		if i <= 0 || i == len(rest)-1 {
			return nil, fmt.Errorf("cloud store needs cloud:URL/BUCKET")
		}
		return udsm.OpenCloudStore("cloud", rest[:i], rest[i+1:]), nil
	default:
		return nil, fmt.Errorf("unknown store kind %q", kind)
	}
}

func run(storeSpec, op, key, value, encrypt string, compress bool, cacheN int) error {
	ctx := context.Background()
	store, err := openStore(storeSpec)
	if err != nil {
		return err
	}
	defer store.Close()

	// Optional DSCL enhancements over any store.
	var opts []dscl.Option
	if compress {
		opts = append(opts, dscl.WithCompression(dscl.CompressionOptions{}))
	}
	if encrypt != "" {
		opts = append(opts, dscl.WithTransform(dscl.EncryptionFromPassphrase(encrypt)))
	}
	if cacheN > 0 {
		opts = append(opts, dscl.WithCache(dscl.NewInProcessCache(dscl.InProcessOptions{MaxEntries: cacheN})))
	}
	var s kv.Store = store
	if len(opts) > 0 {
		s = dscl.New(store, opts...)
	}

	switch op {
	case "get":
		if key == "" {
			return fmt.Errorf("get needs -key")
		}
		v, err := s.Get(ctx, key)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(v, '\n'))
		return err
	case "put":
		if key == "" {
			return fmt.Errorf("put needs -key")
		}
		data := []byte(value)
		if strings.HasPrefix(value, "@") {
			if data, err = os.ReadFile(value[1:]); err != nil {
				return err
			}
		}
		return s.Put(ctx, key, data)
	case "del":
		if key == "" {
			return fmt.Errorf("del needs -key")
		}
		return s.Delete(ctx, key)
	case "keys":
		keys, err := s.Keys(ctx)
		if err != nil {
			return err
		}
		for _, k := range keys {
			fmt.Println(k)
		}
		return nil
	case "len":
		n, err := s.Len(ctx)
		if err != nil {
			return err
		}
		fmt.Println(n)
		return nil
	case "clear":
		return s.Clear(ctx)
	case "bench":
		rep, err := workload.RunMixed(ctx, s, workload.MixedConfig{
			Clients: 4, Ops: 1000, ReadFraction: 0.9, Keys: 50, Size: 1 << 10, Seed: 1,
		})
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	case "":
		return fmt.Errorf("missing -op (get, put, del, keys, len, clear, bench)")
	default:
		return fmt.Errorf("unknown op %q", op)
	}
}
