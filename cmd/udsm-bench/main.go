// Command udsm-bench regenerates the data series behind every figure of
// the paper's evaluation (§V): Figs. 9–21 plus the Fig. 8 delta-encoding
// companion experiment. Output is one gnuplot-ready text file per figure in
// -out, and a summary on stdout.
//
// Usage:
//
//	udsm-bench -fig all -out results -scale 0.02
//	udsm-bench -fig 9            # just Fig. 9
//	udsm-bench -fig 11 -scale 1  # Cloud Store 1 + in-process cache, paper-scale WAN latency
//
// -scale multiplies the simulated WAN latency model. 1.0 reproduces
// paper-magnitude latencies (hundreds of ms per cloud request — slow!);
// the default 0.05 preserves the orderings and crossovers of the figures
// while keeping a full run to a few minutes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"edsc/internal/benchkit"
	"edsc/monitor"
	"edsc/udsm"
	"edsc/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "all", `figure to regenerate: 8..21, "all", or "mixed" (throughput extension)`)
		out      = flag.String("out", "results", "output directory for .dat files")
		scale    = flag.Float64("scale", 0.05, "WAN latency scale (1.0 = paper magnitude)")
		runs     = flag.Int("runs", 4, "runs averaged per data point")
		ops      = flag.Int("ops", 2, "operations per run per point")
		maxSz    = flag.Int("maxsize", 1<<20, "largest object size in bytes")
		tmpDir   = flag.String("workdir", "", "working directory for the file/SQL stores (default: a temp dir)")
		metrics  = flag.String("metrics", "", "observability listen address serving the manager's /metrics and /debug/pprof/ while the bench runs (empty = off)")
		batch    = flag.Int("batch", 0, `largest keys-per-batch for the batched multi-key comparison (0 = off; "-fig batch" enables it with the default of 64)`)
		jsonOut  = flag.String("json", "", "run the allocation-profile experiment and write the machine-readable report to this path (standalone mode; skips the figures)")
		baseline = flag.String("baseline", "", "compare the allocation report against this committed baseline and exit 1 when a guarded path's allocs/op regresses >20% (requires -json)")
		payload  = flag.Int("payload", 4<<10, "object size for the allocation-profile experiment")
		clusterN = flag.Int("cluster", 0, `largest node count for the cluster scaling sweep over miniredis-backed clusters (0 = off; "-fig cluster" enables it with the default of 5)`)
		tjsonOut = flag.String("tjson", "", `run the network-hot-path throughput experiment ("-fig mux" closed loop) and write the machine-readable report to this path (standalone mode; skips the figures)`)
		tbase    = flag.String("tbaseline", "", "compare the throughput report against this committed baseline and exit 1 on ops/sec, p99, or mux-speedup regression (requires -tjson)")
		muxG     = flag.Int("muxg", 1000, "concurrent goroutines for the mux throughput experiment (up to 10k)")
		muxConns = flag.Int("muxconns", 8, "multiplexed sockets for the mux throughput experiment")
		muxOps   = flag.Int("muxops", 200_000, "operation budget per client mode for the mux throughput experiment")
		hjsonOut = flag.String("hjson", "", `run the cloudsim HTTP throughput experiment (per-op vs tuned pool vs coalesced) and write the machine-readable report to this path (standalone mode; skips the figures)`)
		hbase    = flag.String("hbaseline", "", "compare the HTTP throughput report against this committed baseline and exit 1 on ops/sec, p99, or coalesce-speedup regression (requires -hjson)")
		httpG    = flag.Int("httpg", 256, "concurrent goroutines for the HTTP throughput experiment")
		httpOps  = flag.Int("httpops", 60_000, "operation budget per pooled client mode for the HTTP throughput experiment")
		sjsonOut = flag.String("sjson", "", `run the paged SQL storage-engine throughput experiment ("-fig sql": cached vs >>-RAM datasets) and write the machine-readable report to this path (standalone mode; skips the figures)`)
		sbase    = flag.String("sbaseline", "", "compare the SQL throughput report against this committed baseline and exit 1 on ops/sec, p99, data/cache-ratio, or paged-penalty regression (requires -sjson)")
		sqlOps   = flag.Int("sqlops", 20_000, "operation budget per cache regime for the SQL throughput experiment")
		sqlKeys  = flag.Int("sqlkeys", 1500, "dataset rows for the SQL throughput experiment")
		cjsonOut = flag.String("cjson", "", `run the commit-pipeline throughput experiment ("-fig commit": serial vs grouped commits across writer counts) and write the machine-readable report to this path (standalone mode; skips the figures)`)
		cbase    = flag.String("cbaseline", "", "compare the commit throughput report against this committed baseline and exit 1 on ops/sec, p99, or group-commit-speedup regression (requires -cjson)")
		cOps     = flag.Int("commitops", 4000, "operation budget per (mode, writers) cell for the commit throughput experiment")
	)
	flag.Parse()

	if *jsonOut != "" {
		if err := runAlloc(*jsonOut, *baseline, *payload); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *baseline != "" {
		fmt.Fprintln(os.Stderr, "udsm-bench: -baseline requires -json")
		os.Exit(1)
	}
	if *tjsonOut != "" {
		if err := runMuxThroughput(*tjsonOut, *tbase, *muxG, *muxConns, *muxOps, ""); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *tbase != "" {
		fmt.Fprintln(os.Stderr, "udsm-bench: -tbaseline requires -tjson")
		os.Exit(1)
	}
	if *hjsonOut != "" {
		if err := runHTTPThroughput(*hjsonOut, *hbase, *httpG, *httpOps, ""); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *hbase != "" {
		fmt.Fprintln(os.Stderr, "udsm-bench: -hbaseline requires -hjson")
		os.Exit(1)
	}
	if *sjsonOut != "" {
		if err := runSQLThroughput(*sjsonOut, *sbase, *sqlOps, *sqlKeys, ""); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *sbase != "" {
		fmt.Fprintln(os.Stderr, "udsm-bench: -sbaseline requires -sjson")
		os.Exit(1)
	}
	if *cjsonOut != "" {
		if err := runCommitThroughput(*cjsonOut, *cbase, *cOps, ""); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *cbase != "" {
		fmt.Fprintln(os.Stderr, "udsm-bench: -cbaseline requires -cjson")
		os.Exit(1)
	}
	if *fig == "commit" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		if err := runCommitThroughput("", "", *cOps, filepath.Join(*out, "ext_commit_group.dat")); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "sql" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		if err := runSQLThroughput("", "", *sqlOps, *sqlKeys, filepath.Join(*out, "ext_sql_paged.dat")); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "mux" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		if err := runMuxThroughput("", "", *muxG, *muxConns, *muxOps, filepath.Join(*out, "ext_mux_throughput.dat")); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		if err := runHTTPThroughput("", "", *httpG, *httpOps, filepath.Join(*out, "ext_http_throughput.dat")); err != nil {
			fmt.Fprintln(os.Stderr, "udsm-bench:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*fig, *out, *scale, *runs, *ops, *maxSz, *tmpDir, *metrics, *batch, *clusterN); err != nil {
		fmt.Fprintln(os.Stderr, "udsm-bench:", err)
		os.Exit(1)
	}
}

// runMuxThroughput is the "-fig mux" / -tjson mode: a closed-loop mixed
// workload (90% reads) against an in-process miniredis server on loopback,
// once per client mode — per-request connections, the bounded pool, and the
// multiplexed hot path — optionally gated against a committed baseline
// (BENCH_PR7.json) the way the allocation gate works.
func runMuxThroughput(jsonPath, baselinePath string, goroutines, conns, ops int, datPath string) error {
	fmt.Printf("running network hot-path throughput (closed loop, %d goroutines, %d mux conns) ...\n", goroutines, conns)
	rep, err := benchkit.RunThroughput(benchkit.ThroughputConfig{
		Goroutines: goroutines,
		MuxConns:   conns,
		Ops:        ops,
		PerConnOps: ops / 10,
	})
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		mark := " "
		if r.Guarded {
			mark = "*"
		}
		fmt.Printf("  %s %-8s %12.0f ops/sec  read p99 %8.3f ms  write p99 %8.3f ms  (%d ops, %d errors)\n",
			mark, r.Name, r.OpsPerSec, r.ReadP99Ms, r.WriteP99Ms, r.Ops, r.Errors)
	}
	fmt.Printf("  mux speedup over per-request connections: %.1fx\n", rep.MuxSpeedup)

	if datPath != "" {
		f, err := os.Create(datPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "# extension: network hot-path throughput, mixed workload (90%% reads, %d goroutines, %d B values), loopback miniredis\n", rep.Goroutines, rep.ValueSize)
		fmt.Fprintln(f, "# columns: mode ops_per_sec read_p99_ms write_p99_ms")
		for _, r := range rep.Results {
			fmt.Fprintf(f, "%s %.0f %.4f %.4f\n", r.Name, r.OpsPerSec, r.ReadP99Ms, r.WriteP99Ms)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("data written to %s\n", datPath)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if _, err := rep.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report written to %s (* = guarded against baseline)\n", jsonPath)
	}

	if baselinePath == "" {
		return nil
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, err := benchkit.LoadThroughputReport(bf)
	if err != nil {
		return fmt.Errorf("loading baseline %s: %w", baselinePath, err)
	}
	// Loose absolute floors (CI runners vary widely in speed); the
	// machine-independent mux/perconn speedup ratio is the strict gate.
	if regs := benchkit.CompareThroughput(base, rep, 0.25, 4.0, 5.0); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "throughput regression:", r)
		}
		return fmt.Errorf("%d throughput regression(s) vs %s", len(regs), baselinePath)
	}
	fmt.Printf("no throughput regressions vs %s\n", baselinePath)
	return nil
}

// runHTTPThroughput is the "-fig mux" companion / -hjson mode: the same
// closed-loop mixed workload against an in-process cloudsim server on
// loopback, once per HTTP client mode — a fresh connection per request, the
// tuned keep-alive pool, and the tuned pool with GET coalescing — optionally
// gated against a committed baseline (BENCH_PR8.json).
func runHTTPThroughput(jsonPath, baselinePath string, goroutines, ops int, datPath string) error {
	fmt.Printf("running cloudsim HTTP throughput (closed loop, %d goroutines) ...\n", goroutines)
	rep, err := benchkit.RunHTTPThroughput(benchkit.HTTPThroughputConfig{
		Goroutines: goroutines,
		Ops:        ops,
		PerOpOps:   ops / 6,
	})
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		mark := " "
		if r.Guarded {
			mark = "*"
		}
		fmt.Printf("  %s %-10s %12.0f ops/sec  read p99 %8.3f ms  write p99 %8.3f ms  (%d ops, %d errors)\n",
			mark, r.Name, r.OpsPerSec, r.ReadP99Ms, r.WriteP99Ms, r.Ops, r.Errors)
	}
	fmt.Printf("  coalesce speedup over per-op requests: %.1fx\n", rep.CoalesceSpeedup)

	if datPath != "" {
		f, err := os.Create(datPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "# extension: cloudsim HTTP hot-path throughput, mixed workload (90%% reads, %d goroutines, %d B values), loopback cloudsim\n", rep.Goroutines, rep.ValueSize)
		fmt.Fprintln(f, "# columns: mode ops_per_sec read_p99_ms write_p99_ms")
		for _, r := range rep.Results {
			fmt.Fprintf(f, "%s %.0f %.4f %.4f\n", r.Name, r.OpsPerSec, r.ReadP99Ms, r.WriteP99Ms)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("data written to %s\n", datPath)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if _, err := rep.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report written to %s (* = guarded against baseline)\n", jsonPath)
	}

	if baselinePath == "" {
		return nil
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, err := benchkit.LoadHTTPThroughputReport(bf)
	if err != nil {
		return fmt.Errorf("loading baseline %s: %w", baselinePath, err)
	}
	// Loose absolute floors (CI runners vary widely in speed); the
	// machine-independent coalesced/per-op speedup ratio is the strict gate
	// (the acceptance criterion's 3x).
	if regs := benchkit.CompareHTTPThroughput(base, rep, 0.25, 4.0, 3.0); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "HTTP throughput regression:", r)
		}
		return fmt.Errorf("%d HTTP throughput regression(s) vs %s", len(regs), baselinePath)
	}
	fmt.Printf("no HTTP throughput regressions vs %s\n", baselinePath)
	return nil
}

// runSQLThroughput is the "-fig sql" / -sjson mode: the closed-loop mixed
// workload (90% reads, uniform keys) through the paged minisql storage
// engine, once with the whole dataset cache-resident and once with the
// dataset ~10x the page cache — optionally gated against a committed
// baseline (BENCH_PR9.json). The headline gate is the cached/paged penalty:
// running data well beyond RAM must cost at most 3x.
func runSQLThroughput(jsonPath, baselinePath string, ops, keys int, datPath string) error {
	fmt.Printf("running paged SQL storage-engine throughput (closed loop, %d rows x 4 KiB) ...\n", keys)
	rep, err := benchkit.RunSQLThroughput(benchkit.SQLThroughputConfig{
		Ops:  ops,
		Keys: keys,
	})
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("  * %-8s %12.0f ops/sec  read p99 %8.3f ms  write p99 %8.3f ms  (%d pages, cache %d, %d evictions, %d errors)\n",
			r.Name, r.OpsPerSec, r.ReadP99Ms, r.WriteP99Ms, r.DataPages, r.CachePages, r.Evictions, r.Errors)
	}
	fmt.Printf("  dataset %.1fx the paged cache; paged penalty %.2fx\n", rep.DataToCacheRatio, rep.PagedPenalty)

	if datPath != "" {
		f, err := os.Create(datPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "# extension: paged SQL storage engine, mixed workload (90%% reads, %d goroutines, %d rows x %d B), file-backed minisql\n", rep.Goroutines, rep.Keys, rep.ValueSize)
		fmt.Fprintln(f, "# columns: regime cache_pages data_pages ops_per_sec read_p99_ms write_p99_ms")
		for _, r := range rep.Results {
			fmt.Fprintf(f, "%s %d %d %.0f %.4f %.4f\n", r.Name, r.CachePages, r.DataPages, r.OpsPerSec, r.ReadP99Ms, r.WriteP99Ms)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("data written to %s\n", datPath)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if _, err := rep.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report written to %s (* = guarded against baseline)\n", jsonPath)
	}

	if baselinePath == "" {
		return nil
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, err := benchkit.LoadSQLThroughputReport(bf)
	if err != nil {
		return fmt.Errorf("loading baseline %s: %w", baselinePath, err)
	}
	// Loose absolute floors (CI runners vary widely in speed); the strict,
	// machine-independent gates are structural — the dataset must be >= 10x
	// the paged cache and the cached/paged penalty must stay within the
	// acceptance criterion's 3x.
	if regs := benchkit.CompareSQLThroughput(base, rep, 0.25, 4.0, 10.0, 3.0); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "SQL throughput regression:", r)
		}
		return fmt.Errorf("%d SQL throughput regression(s) vs %s", len(regs), baselinePath)
	}
	fmt.Printf("no SQL throughput regressions vs %s\n", baselinePath)
	return nil
}

// runCommitThroughput is the "-fig commit" / -cjson mode: the write-heavy
// closed loop through the file-backed minisql store, serial commits vs the
// group-commit pipeline across 1/4/16/64 concurrent writers (plus one
// hot-key Zipfian pair) — optionally gated against a committed baseline
// (BENCH_PR10.json). The headline gate is the grouped/serial speedup at 16
// writers: group commit must buy at least 3x.
func runCommitThroughput(jsonPath, baselinePath string, ops int, datPath string) error {
	fmt.Printf("running commit-pipeline throughput (closed loop, %d ops per cell, serial vs grouped) ...\n", ops)
	rep, err := benchkit.RunCommitThroughput(benchkit.CommitThroughputConfig{Ops: ops})
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		group := ""
		if r.AvgGroup > 0 {
			group = fmt.Sprintf("  avg group %5.1f", r.AvgGroup)
		}
		fmt.Printf("  * %-20s %10.0f ops/sec  write p99 %8.3f ms  %6d fsyncs / %6d commits%s  (%d errors)\n",
			r.Name, r.OpsPerSec, r.WriteP99Ms, r.Fsyncs, r.Batches, group, r.Errors)
	}
	for _, s := range rep.Speedups {
		fmt.Printf("  grouped/serial at %2d writers: %.2fx\n", s.Writers, s.Speedup)
	}

	if datPath != "" {
		f, err := os.Create(datPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "# extension: group commit vs serial commit, write-heavy closed loop (80%% writes, %d rows x %d B), file-backed minisql\n", rep.Keys, rep.ValueSize)
		fmt.Fprintln(f, "# columns: cell writers ops_per_sec write_p99_ms wal_fsyncs committed_batches")
		for _, r := range rep.Results {
			fmt.Fprintf(f, "%s %d %.0f %.4f %d %d\n", r.Name, r.Writers, r.OpsPerSec, r.WriteP99Ms, r.Fsyncs, r.Batches)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("data written to %s\n", datPath)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if _, err := rep.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report written to %s (* = guarded against baseline)\n", jsonPath)
	}

	if baselinePath == "" {
		return nil
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, err := benchkit.LoadCommitThroughputReport(bf)
	if err != nil {
		return fmt.Errorf("loading baseline %s: %w", baselinePath, err)
	}
	// Loose absolute floors (CI runners vary widely in speed); the strict,
	// machine-independent gate is the grouped/serial ratio at 16 writers —
	// the acceptance criterion's 3x.
	if regs := benchkit.CompareCommitThroughput(base, rep, 0.25, 4.0, 3.0); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "commit throughput regression:", r)
		}
		return fmt.Errorf("%d commit throughput regression(s) vs %s", len(regs), baselinePath)
	}
	fmt.Printf("no commit throughput regressions vs %s\n", baselinePath)
	return nil
}

// runAlloc is the -json mode: measure the hot paths, write the report, and
// optionally gate against a committed baseline (the CI regression check).
func runAlloc(outPath, baselinePath string, payload int) error {
	fmt.Printf("running allocation-profile experiment (payload %d bytes) ...\n", payload)
	rep, err := benchkit.RunAlloc(payload)
	if err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if _, err := rep.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, r := range rep.Results {
		mark := " "
		if r.Guarded {
			mark = "*"
		}
		fmt.Printf("  %s %-28s %10.0f ns/op %8d B/op %6d allocs/op\n",
			mark, r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("report written to %s (* = guarded against baseline)\n", outPath)

	if baselinePath == "" {
		return nil
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, err := benchkit.LoadAllocReport(bf)
	if err != nil {
		return fmt.Errorf("loading baseline %s: %w", baselinePath, err)
	}
	if regs := benchkit.CompareAlloc(base, rep, 0.20); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "allocation regression:", r)
		}
		return fmt.Errorf("%d guarded path(s) regressed vs %s", len(regs), baselinePath)
	}
	fmt.Printf("no allocation regressions vs %s\n", baselinePath)
	return nil
}

func run(fig, out string, scale float64, runs, ops, maxSize int, workdir, metricsAddr string, batch, clusterN int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	if workdir == "" {
		dir, err := os.MkdirTemp("", "udsm-bench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		workdir = dir
	}

	env, err := benchkit.Setup(scale, workdir)
	if err != nil {
		return err
	}
	defer env.Close()

	if metricsAddr != "" {
		msrv, err := monitor.Serve(metricsAddr, env.Mgr.Metrics())
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Printf("metrics at http://%s/metrics (pprof under /debug/pprof/)\n", msrv.Addr())
	}

	cfg := benchkit.PaperConfig()
	cfg.Runs, cfg.OpsPerRun = runs, ops
	cfg.Sizes = nil
	for _, s := range workload.DefaultSizes() {
		if s <= maxSize {
			cfg.Sizes = append(cfg.Sizes, s)
		}
	}

	want := func(n string) bool { return fig == "all" || fig == n }
	ctx := context.Background()

	if want("9") || want("10") {
		fmt.Println("running Figs. 9-10: read/write latency vs size, all stores ...")
		read, write, err := env.Fig9And10(ctx, cfg)
		if err != nil {
			return err
		}
		if want("9") {
			if err := save(out, "fig09_read_latency.dat", read); err != nil {
				return err
			}
		}
		if want("10") {
			if err := save(out, "fig10_write_latency.dat", write); err != nil {
				return err
			}
		}
	}

	cached := []struct {
		fig   string
		store string
		kind  benchkit.CacheKind
		file  string
	}{
		{"11", benchkit.Cloud1, benchkit.InProcess, "fig11_cloudstore1_inprocess.dat"},
		{"12", benchkit.Cloud1, benchkit.Remote, "fig12_cloudstore1_remote.dat"},
		{"13", benchkit.Cloud2, benchkit.InProcess, "fig13_cloudstore2_inprocess.dat"},
		{"14", benchkit.Cloud2, benchkit.Remote, "fig14_cloudstore2_remote.dat"},
		{"15", benchkit.SQL, benchkit.InProcess, "fig15_minisql_inprocess.dat"},
		{"16", benchkit.SQL, benchkit.Remote, "fig16_minisql_remote.dat"},
		{"17", benchkit.FS, benchkit.InProcess, "fig17_filesystem_inprocess.dat"},
		{"18", benchkit.FS, benchkit.Remote, "fig18_filesystem_remote.dat"},
		{"19", benchkit.Redis, benchkit.InProcess, "fig19_miniredis_inprocess.dat"},
	}
	for _, c := range cached {
		if !want(c.fig) {
			continue
		}
		fmt.Printf("running Fig. %s: %s with %s cache ...\n", c.fig, c.store, kindName(c.kind))
		rep, err := env.FigCached(ctx, c.store, c.kind, cfg)
		if err != nil {
			return err
		}
		if err := save(out, c.file, rep); err != nil {
			return err
		}
	}

	if want("20") {
		fmt.Println("running Fig. 20: AES-128 encryption/decryption overhead ...")
		rep, err := env.Fig20(cfg)
		if err != nil {
			return err
		}
		if err := save(out, "fig20_encryption.dat", rep); err != nil {
			return err
		}
	}
	if want("21") {
		fmt.Println("running Fig. 21: gzip compression/decompression overhead ...")
		rep, err := env.Fig21(cfg)
		if err != nil {
			return err
		}
		if err := save(out, "fig21_compression.dat", rep); err != nil {
			return err
		}
	}
	if want("8") {
		fmt.Println("running Fig. 8 companion: delta encoding vs change fraction ...")
		rep, err := env.Fig8Delta(64<<10, 0, 3)
		if err != nil {
			return err
		}
		if err := save(out, "fig08_delta.dat", rep); err != nil {
			return err
		}
	}
	if fig == "mixed" || fig == "all" {
		fmt.Println("running mixed-workload throughput (extension; 90% reads, 8 clients) ...")
		if err := runMixed(ctx, env, out); err != nil {
			return err
		}
	}
	if batch > 0 || fig == "batch" {
		if batch <= 0 {
			batch = 64
		}
		fmt.Printf("running batched multi-key comparison (up to %d keys/batch) ...\n", batch)
		if err := runBatch(ctx, env, out, batch); err != nil {
			return err
		}
	}
	if clusterN > 0 || fig == "cluster" {
		if clusterN <= 0 {
			clusterN = 5
		}
		fmt.Printf("running cluster scaling sweep (miniredis nodes, up to N=%d) ...\n", clusterN)
		if err := runCluster(ctx, out, clusterN); err != nil {
			return err
		}
	}
	fmt.Printf("done; data files in %s\n", out)
	return nil
}

// runCluster measures mixed-workload throughput of the replicated cluster
// tier as the node count grows. Nodes are miniredis servers, so every
// replica access crosses a real TCP connection; replication is capped at 3
// with majority quorums, matching the chaos suite's geometry. The N=1 row
// is the unreplicated baseline — the cost of quorum replication is the gap
// between it and N>=3.
func runCluster(ctx context.Context, out string, maxNodes int) error {
	f, err := os.Create(filepath.Join(out, "ext_cluster_scaling.dat"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# extension: cluster tier scaling, mixed workload (90% reads, 8 clients, 1 KiB), miniredis nodes")
	fmt.Fprintln(f, "# columns: nodes replication read_quorum write_quorum ops_per_sec read_p99_ms write_p99_ms")
	for _, n := range []int{1, 3, 5} {
		if n > maxNodes {
			break
		}
		if err := runClusterPoint(ctx, f, n); err != nil {
			return err
		}
	}
	return nil
}

func runClusterPoint(ctx context.Context, f io.Writer, n int) error {
	nodes := make([]udsm.ClusterNode, n)
	for i := range nodes {
		srv, err := udsm.StartMiniRedis(udsm.MiniRedisOptions{})
		if err != nil {
			return err
		}
		defer srv.Close()
		id := fmt.Sprintf("node%d", i)
		store := udsm.OpenMiniRedis(id, srv.Addr(), "")
		defer store.Close()
		nodes[i] = udsm.ClusterNode{ID: id, Store: store}
	}
	c, err := udsm.NewClusterStore(fmt.Sprintf("cluster%d", n), nodes, udsm.ClusterOptions{})
	if err != nil {
		return err
	}
	opts := c.Options()
	rep, err := workload.RunMixed(ctx, c, workload.MixedConfig{
		Clients: 8, Ops: 2000, ReadFraction: 0.9, Keys: 64, Size: 1 << 10,
		Seed: 7, KeyPrefix: fmt.Sprintf("clu%d:", n),
	})
	if err != nil {
		return err
	}
	fmt.Printf("  N=%d (R=%d W=%d of %d): %s\n",
		n, opts.ReadQuorum, opts.WriteQuorum, opts.Replication, rep)
	fmt.Fprintf(f, "%d %d %d %d %.0f %.4f %.4f\n",
		n, opts.Replication, opts.ReadQuorum, opts.WriteQuorum, rep.Throughput,
		float64(rep.ReadLatency.P99)/1e6, float64(rep.WriteLatency.P99)/1e6)
	return nil
}

// runBatch measures, per store, how much a batched multi-key call saves over
// the equivalent per-key loop — the end-to-end payoff of the bulk interface.
func runBatch(ctx context.Context, env *benchkit.Env, out string, maxBatch int) error {
	f, err := os.Create(filepath.Join(out, "ext_batch_speedup.dat"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# extension: batched multi-key interface vs per-key loop, 1 KiB objects")
	fmt.Fprintln(f, "# columns: store batch_size perkey_get_ms batch_get_ms get_speedup perkey_put_ms batch_put_ms put_speedup")
	sizes := []int{}
	for _, n := range []int{4, 16, maxBatch} {
		if n <= maxBatch && (len(sizes) == 0 || n > sizes[len(sizes)-1]) {
			sizes = append(sizes, n)
		}
	}
	for _, name := range benchkit.AllStores() {
		ds, err := env.Store(name)
		if err != nil {
			return err
		}
		rep, err := workload.RunBatchCompare(ctx, ds, workload.BatchConfig{
			BatchSizes: sizes, Runs: 2, KeyPrefix: "batch:" + name + ":",
		})
		if err != nil {
			return err
		}
		for _, p := range rep.Points {
			fmt.Printf("  %s n=%d: get %.1fx, put %.1fx\n", name, p.BatchSize, p.GetSpeedup(), p.PutSpeedup())
			fmt.Fprintf(f, "%s %d %.4f %.4f %.2f %.4f %.4f %.2f\n",
				name, p.BatchSize,
				float64(p.PerKeyGet)/1e6, float64(p.BatchGet)/1e6, p.GetSpeedup(),
				float64(p.PerKeyPut)/1e6, float64(p.BatchPut)/1e6, p.PutSpeedup())
		}
	}
	return nil
}

// runMixed measures closed-loop throughput per store — an extension beyond
// the paper's latency figures, using the same workload machinery.
func runMixed(ctx context.Context, env *benchkit.Env, out string) error {
	f, err := os.Create(filepath.Join(out, "ext_mixed_throughput.dat"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# extension: mixed workload, 90% reads, 8 clients, 1 KiB objects")
	fmt.Fprintln(f, "# columns: store ops_per_sec read_p99_ms write_p99_ms")
	for _, name := range benchkit.AllStores() {
		ds, err := env.Store(name)
		if err != nil {
			return err
		}
		ops := 2000
		if name == benchkit.Cloud1 || name == benchkit.Cloud2 {
			ops = 300 // WAN-latency stores are slow per op
		}
		rep, err := workload.RunMixed(ctx, ds, workload.MixedConfig{
			Clients: 8, Ops: ops, ReadFraction: 0.9, Keys: 64, Size: 1 << 10,
			Seed: 7, KeyPrefix: "mix:" + name + ":",
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %s\n", rep)
		fmt.Fprintf(f, "%s %.0f %.4f %.4f\n", name, rep.Throughput,
			float64(rep.ReadLatency.P99)/1e6, float64(rep.WriteLatency.P99)/1e6)
	}
	return nil
}

func kindName(k benchkit.CacheKind) string {
	if k == benchkit.InProcess {
		return "in-process"
	}
	return "remote"
}

func save(dir, name string, rep io.WriterTo) error {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := rep.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Echo a short preview to stdout.
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lines := strings.SplitN(string(data), "\n", 4)
	for i, l := range lines {
		if i >= 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", l)
	}
	return nil
}
