package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	out := t.TempDir()
	if err := run("20", out, 0.001, 1, 1, 4096, t.TempDir(), "", 0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(out, "fig20_encryption.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty figure file")
	}
}

func TestRunCachedFigureAndDelta(t *testing.T) {
	out := t.TempDir()
	if err := run("17", out, 0.001, 1, 1, 1024, t.TempDir(), "", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("8", out, 0.001, 1, 1, 1024, t.TempDir(), "", 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig17_filesystem_inprocess.dat", "fig08_delta.dat"} {
		if _, err := os.Stat(filepath.Join(out, f)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunMixedMode(t *testing.T) {
	out := t.TempDir()
	if err := run("mixed", out, 0.001, 1, 1, 1024, t.TempDir(), "", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "ext_mixed_throughput.dat")); err != nil {
		t.Fatal(err)
	}
}

func TestRunBatchMode(t *testing.T) {
	out := t.TempDir()
	if err := run("batch", out, 0.001, 1, 1, 1024, t.TempDir(), "", 8, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(out, "ext_batch_speedup.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty batch data file")
	}
}

func TestRunClusterMode(t *testing.T) {
	out := t.TempDir()
	// N capped at 1: the smoke test only needs the sweep wiring, not the
	// full 5-node run.
	if err := run("cluster", out, 0.001, 1, 1, 1024, t.TempDir(), "", 0, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(out, "ext_cluster_scaling.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty cluster data file")
	}
}
