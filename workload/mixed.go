package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"edsc/kv"
	"edsc/monitor"
)

// MixedConfig parameterizes a closed-loop mixed read/write run: a fixed
// number of concurrent clients each issue operations back-to-back against a
// shared working set — the standard way to measure a store's throughput
// rather than single-operation latency.
type MixedConfig struct {
	// Clients is the number of concurrent workers (default 4).
	Clients int
	// Ops is the total operation budget across all workers (default 1000).
	Ops int
	// ReadFraction in [0,1] is the probability an operation is a read
	// (default 0.9, a cache-friendly mix). Pass a negative value for a
	// pure-write run (0 means "use the default").
	ReadFraction float64
	// Keys is the working-set size (default 100). Keys are preloaded so
	// reads never miss.
	Keys int
	// Size is the object size in bytes (default 1024).
	Size int
	// Source provides payloads (default SyntheticSource).
	Source DataSource
	// Seed makes the operation mix reproducible.
	Seed int64
	// KeyPrefix namespaces the run's keys.
	KeyPrefix string
	// Distribution selects how operations pick keys from the working set:
	// DistUniform (the default) or DistZipf, the standard hot-key skew where
	// a few keys absorb most of the traffic — the shape real caches and
	// contended rows see.
	Distribution Distribution
	// ZipfS is the Zipf skew exponent when Distribution is DistZipf; larger
	// is more skewed. Must be > 1 (default 1.2, a pronounced hot set).
	ZipfS float64
}

// Distribution names a key-popularity distribution for MixedConfig.
type Distribution string

const (
	// DistUniform draws every key with equal probability.
	DistUniform Distribution = "uniform"
	// DistZipf draws keys Zipf-distributed: key 0 is the hottest, the tail
	// is cold.
	DistZipf Distribution = "zipf"
)

// keyPicker returns a per-worker closure drawing key indexes in [0, Keys)
// under the configured distribution. Each worker gets its own rng, so
// pickers are not shared across goroutines.
func (c MixedConfig) keyPicker(rng *rand.Rand) (func() int, error) {
	switch c.Distribution {
	case "", DistUniform:
		return func() int { return rng.Intn(c.Keys) }, nil
	case DistZipf:
		z := rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Keys-1))
		if z == nil {
			return nil, fmt.Errorf("workload: bad Zipf parameters (s=%v must be > 1)", c.ZipfS)
		}
		return func() int { return int(z.Uint64()) }, nil
	default:
		return nil, fmt.Errorf("workload: unknown key distribution %q", c.Distribution)
	}
}

func (c MixedConfig) withDefaults() MixedConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.9
	}
	if c.ReadFraction < 0 {
		c.ReadFraction = 0
	}
	if c.Keys <= 0 {
		c.Keys = 100
	}
	if c.Size <= 0 {
		c.Size = 1024
	}
	if c.Source == nil {
		c.Source = SyntheticSource{Compressibility: 0.5, Seed: 1}
	}
	if c.KeyPrefix == "" {
		c.KeyPrefix = "mixed:"
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	return c
}

// MixedReport is the outcome of RunMixed.
type MixedReport struct {
	Store   string
	Clients int
	Ops     int64
	Reads   int64
	Writes  int64
	Errors  int64
	Elapsed time.Duration
	// Throughput is operations per second over the whole run.
	Throughput float64
	// ReadLatency / WriteLatency summarize per-operation latency.
	ReadLatency  monitor.Summary
	WriteLatency monitor.Summary
}

// RunMixed preloads the working set and drives the mixed workload.
func RunMixed(ctx context.Context, store kv.Store, cfg MixedConfig) (*MixedReport, error) {
	cfg = cfg.withDefaults()
	payload := cfg.Source.Data(cfg.Size)
	keyOf := func(i int) string { return fmt.Sprintf("%s%d", cfg.KeyPrefix, i) }
	for i := 0; i < cfg.Keys; i++ {
		if err := store.Put(ctx, keyOf(i), payload); err != nil {
			return nil, fmt.Errorf("workload: preloading %s: %w", keyOf(i), err)
		}
	}

	rec := monitor.New(store.Name(), 4096)
	var reads, writes, errs atomic.Int64
	var remaining atomic.Int64
	remaining.Store(int64(cfg.Ops))

	// Validate the distribution before spawning workers so a bad config is
	// one clean error, not a per-goroutine failure.
	if _, err := cfg.keyPicker(rand.New(rand.NewSource(cfg.Seed))); err != nil {
		return nil, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			pick, _ := cfg.keyPicker(rng)
			for remaining.Add(-1) >= 0 {
				key := keyOf(pick())
				if rng.Float64() < cfg.ReadFraction {
					opStart := time.Now()
					_, err := store.Get(ctx, key)
					rec.Record("get", time.Since(opStart), cfg.Size, err != nil)
					reads.Add(1)
					if err != nil {
						errs.Add(1)
					}
				} else {
					opStart := time.Now()
					err := store.Put(ctx, key, payload)
					rec.Record("put", time.Since(opStart), cfg.Size, err != nil)
					writes.Add(1)
					if err != nil {
						errs.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &MixedReport{
		Store:   store.Name(),
		Clients: cfg.Clients,
		Ops:     reads.Load() + writes.Load(),
		Reads:   reads.Load(),
		Writes:  writes.Load(),
		Errors:  errs.Load(),
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Ops) / elapsed.Seconds()
	}
	for _, op := range rec.Snapshot(false).Ops {
		switch op.Op {
		case "get":
			rep.ReadLatency = op
		case "put":
			rep.WriteLatency = op
		}
	}
	return rep, nil
}

// String renders a one-line summary.
func (r *MixedReport) String() string {
	return fmt.Sprintf("%s: %d ops (%d r / %d w) by %d clients in %v = %.0f ops/s (read p99 %v, write p99 %v, %d errors)",
		r.Store, r.Ops, r.Reads, r.Writes, r.Clients, r.Elapsed.Round(time.Millisecond),
		r.Throughput, r.ReadLatency.P99, r.WriteLatency.P99, r.Errors)
}
