package workload

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"edsc/kv"
)

func TestRunMixedBasic(t *testing.T) {
	store := kv.NewMem("m")
	rep, err := RunMixed(context.Background(), store, MixedConfig{
		Clients: 4, Ops: 500, ReadFraction: 0.8, Keys: 20, Size: 128, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 500 {
		t.Fatalf("Ops = %d, want 500", rep.Ops)
	}
	if rep.Reads+rep.Writes != rep.Ops {
		t.Fatalf("reads+writes = %d", rep.Reads+rep.Writes)
	}
	// 80/20 split within generous tolerance.
	frac := float64(rep.Reads) / float64(rep.Ops)
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("read fraction = %.2f", frac)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput)
	}
	if rep.ReadLatency.Count == 0 || rep.WriteLatency.Count == 0 {
		t.Fatalf("latency summaries missing: %+v", rep)
	}
	if !strings.Contains(rep.String(), "ops/s") {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestRunMixedDefaults(t *testing.T) {
	store := kv.NewMem("m")
	rep, err := RunMixed(context.Background(), store, MixedConfig{Ops: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clients != 4 || rep.Ops != 50 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunMixedCountsErrors(t *testing.T) {
	store := kv.NewMem("m")
	cfg := MixedConfig{Clients: 2, Ops: 100, Keys: 5, ReadFraction: 0.5, Seed: 2}
	// Preload succeeds, then the store dies: every op errors.
	cfg = cfg.withDefaults()
	if _, err := RunMixed(context.Background(), store, cfg); err != nil {
		t.Fatal(err)
	}
	_ = store.Close()
	rep, err := RunMixed(context.Background(), store, cfg)
	if err == nil {
		// Preload fails on a closed store, so RunMixed errors up front.
		t.Fatalf("expected preload failure, got report %+v", rep)
	}
}

func TestRunMixedReadsNeverMiss(t *testing.T) {
	// All keys preloaded: a 100% read run has zero errors.
	store := kv.NewMem("m")
	rep, err := RunMixed(context.Background(), store, MixedConfig{
		Clients: 3, Ops: 300, ReadFraction: 1.0, Keys: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Writes != 0 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunMixedConcurrencyScales(t *testing.T) {
	// With an artificially slow store, more clients must raise throughput
	// (closed-loop overlap) — this validates that workers truly run
	// concurrently.
	slow := &slowStore{Mem: kv.NewMem("slow"), readDelay: 2 * time.Millisecond, writeDelay: 2 * time.Millisecond}
	one, err := RunMixed(context.Background(), slow, MixedConfig{Clients: 1, Ops: 60, Keys: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunMixed(context.Background(), slow, MixedConfig{Clients: 8, Ops: 60, Keys: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if eight.Throughput < 2*one.Throughput {
		t.Fatalf("throughput did not scale: 1 client %.0f ops/s, 8 clients %.0f ops/s",
			one.Throughput, eight.Throughput)
	}
}

// TestZipfDistributionSkews checks DistZipf concentrates traffic on a hot
// set while DistUniform spreads it, and that bad configs fail loudly.
func TestZipfDistributionSkews(t *testing.T) {
	const keys, draws = 100, 10000
	counts := func(cfg MixedConfig) []int {
		cfg = cfg.withDefaults()
		pick, err := cfg.keyPicker(rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, keys)
		for i := 0; i < draws; i++ {
			out[pick()]++
		}
		return out
	}
	hotShare := func(c []int) float64 {
		sorted := append([]int(nil), c...)
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
		hot := 0
		for _, n := range sorted[:10] { // hottest 10% of keys
			hot += n
		}
		return float64(hot) / draws
	}

	zipf := hotShare(counts(MixedConfig{Keys: keys, Distribution: DistZipf}))
	uniform := hotShare(counts(MixedConfig{Keys: keys}))
	if zipf < 0.5 {
		t.Fatalf("zipf hot-10%% share = %.2f, want skewed (>= 0.5)", zipf)
	}
	if uniform > 0.2 {
		t.Fatalf("uniform hot-10%% share = %.2f, want flat (<= 0.2)", uniform)
	}

	if _, err := (MixedConfig{Keys: keys, Distribution: "pareto"}).withDefaults().keyPicker(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := (MixedConfig{Keys: keys, Distribution: DistZipf, ZipfS: 0.5}).withDefaults().keyPicker(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("ZipfS <= 1 accepted")
	}
}

// TestRunMixedZipf runs the full workload under the hot-key distribution.
func TestRunMixedZipf(t *testing.T) {
	store := kv.NewMem("m")
	rep, err := RunMixed(context.Background(), store, MixedConfig{
		Clients: 4, Ops: 400, Keys: 50, Distribution: DistZipf, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 400 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := RunMixed(context.Background(), store, MixedConfig{
		Ops: 10, Distribution: "bogus",
	}); err == nil {
		t.Fatal("RunMixed accepted an unknown distribution")
	}
}
