package workload

import (
	"context"
	"strings"
	"testing"

	"edsc/kv"
)

func TestRunBatchCompare(t *testing.T) {
	ctx := context.Background()
	rep, err := RunBatchCompare(ctx, kv.NewMem("m"), BatchConfig{
		BatchSizes: []int{2, 4}, ValueSize: 64, Runs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Store != "m" || len(rep.Points) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	for _, p := range rep.Points {
		if p.BatchGet <= 0 || p.PerKeyGet <= 0 || p.BatchPut <= 0 || p.PerKeyPut <= 0 {
			t.Fatalf("unmeasured point: %+v", p)
		}
	}
	var sb strings.Builder
	if _, err := rep.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# store: m") || !strings.Contains(out, "batch_size") {
		t.Fatalf("table output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("want 2 header + 2 data lines:\n%s", out)
	}
}
