package workload

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edsc/kv"
)

func TestSyntheticSourceDeterministicAndSized(t *testing.T) {
	src := SyntheticSource{Compressibility: 0.5, Seed: 7}
	a := src.Data(1000)
	b := src.Data(1000)
	if len(a) != 1000 || !bytes.Equal(a, b) {
		t.Fatal("synthetic source not deterministic or wrong size")
	}
	if bytes.Equal(src.Data(100), src.Data(100)[:50]) {
		t.Skip("unreachable")
	}
}

func TestSyntheticCompressibilityExtremes(t *testing.T) {
	full := SyntheticSource{Compressibility: 1, Seed: 1}.Data(500)
	fullDistinct := map[byte]bool{}
	for _, c := range full {
		fullDistinct[c] = true
	}
	if len(fullDistinct) > 30 {
		t.Fatalf("fully compressible payload has %d distinct bytes", len(fullDistinct))
	}
	random := SyntheticSource{Compressibility: 0, Seed: 1}.Data(500)
	distinct := map[byte]bool{}
	for _, c := range random {
		distinct[c] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("random payload has only %d distinct bytes", len(distinct))
	}
}

func TestFileSourceTiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seed.txt")
	if err := os.WriteFile(path, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := &FileSource{Path: path}
	got := src.Data(8)
	if string(got) != "abcabcab" {
		t.Fatalf("tiled = %q", got)
	}
	if len(src.Data(2)) != 2 {
		t.Fatal("truncation failed")
	}
}

func TestFuncSource(t *testing.T) {
	src := FuncSource(func(size int) []byte { return bytes.Repeat([]byte{'z'}, size) })
	if string(src.Data(3)) != "zzz" {
		t.Fatal("func source broken")
	}
}

// slowStore wraps Mem with fixed artificial latencies so measurements are
// assertable.
type slowStore struct {
	*kv.Mem
	readDelay, writeDelay time.Duration
}

func (s *slowStore) Get(ctx context.Context, key string) ([]byte, error) {
	time.Sleep(s.readDelay)
	return s.Mem.Get(ctx, key)
}

func (s *slowStore) Put(ctx context.Context, key string, value []byte) error {
	time.Sleep(s.writeDelay)
	return s.Mem.Put(ctx, key, value)
}

func TestRunMeasuresLatencies(t *testing.T) {
	store := &slowStore{Mem: kv.NewMem("slow"), readDelay: 2 * time.Millisecond, writeDelay: 5 * time.Millisecond}
	g := New(Config{Sizes: []int{64, 256}, Runs: 2, OpsPerRun: 2})
	rep, err := g.Run(context.Background(), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Read < 2*time.Millisecond || p.Read > 20*time.Millisecond {
			t.Fatalf("read latency %v out of range", p.Read)
		}
		if p.Write < 5*time.Millisecond {
			t.Fatalf("write latency %v below injected delay", p.Write)
		}
		if p.Write <= p.Read {
			t.Fatalf("write (%v) not slower than read (%v)", p.Write, p.Read)
		}
		if p.CachedRead != 0 {
			t.Fatal("CachedRead measured without a cached getter")
		}
	}
}

func TestRunWithCachedGetter(t *testing.T) {
	store := &slowStore{Mem: kv.NewMem("slow"), readDelay: 5 * time.Millisecond}
	// Simulated cache: first access per key pays the store read, later
	// accesses are instant.
	seen := map[string][]byte{}
	cached := func(ctx context.Context, key string) ([]byte, error) {
		if v, ok := seen[key]; ok {
			return v, nil
		}
		v, err := store.Get(ctx, key)
		if err != nil {
			return nil, err
		}
		seen[key] = v
		return v, nil
	}
	g := New(Config{Sizes: []int{128}, Runs: 2, OpsPerRun: 2, HitRates: []float64{0, 50, 100}})
	rep, err := g.Run(context.Background(), store, cached)
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Points[0]
	if p.CachedRead >= p.Read/2 {
		t.Fatalf("cached read %v not well below uncached %v", p.CachedRead, p.Read)
	}
	at0 := p.ReadAtHitRate(0)
	at50 := p.ReadAtHitRate(50)
	at100 := p.ReadAtHitRate(100)
	if at0 != p.Read || at100 != p.CachedRead {
		t.Fatalf("extrapolation endpoints wrong: %v, %v", at0, at100)
	}
	mid := (p.Read + p.CachedRead) / 2
	if at50 < mid-time.Millisecond || at50 > mid+time.Millisecond {
		t.Fatalf("50%% extrapolation = %v, want ~%v", at50, mid)
	}
}

func TestReportWriteTo(t *testing.T) {
	rep := &Report{
		Store:    "teststore",
		HitRates: []float64{25, 100},
		Points: []Point{
			{Size: 1024, Read: 2 * time.Millisecond, Write: 4 * time.Millisecond, CachedRead: time.Millisecond},
		},
	}
	var buf bytes.Buffer
	if _, err := rep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# store: teststore") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "read@25%_ms") || !strings.Contains(out, "read@100%_ms") {
		t.Fatalf("missing hit-rate columns: %q", out)
	}
	if !strings.Contains(out, "1024 2.0000 4.0000 1.7500 1.0000") {
		t.Fatalf("data row wrong: %q", out)
	}
}

func TestMeasureTransform(t *testing.T) {
	g := New(Config{Sizes: []int{256, 1024}, Runs: 1, OpsPerRun: 2})
	encode := func(b []byte) ([]byte, error) {
		time.Sleep(time.Millisecond)
		out := append([]byte{0}, b...)
		return out, nil
	}
	decode := func(b []byte) ([]byte, error) { return b[1:], nil }
	rep, err := g.MeasureTransform("prefix", encode, decode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Encode < time.Millisecond {
			t.Fatalf("encode = %v", p.Encode)
		}
		if p.Encode <= p.Decode {
			t.Fatalf("encode (%v) not slower than decode (%v)", p.Encode, p.Decode)
		}
		if p.OutSize != p.Size+1 {
			t.Fatalf("out size = %d", p.OutSize)
		}
	}
	var buf bytes.Buffer
	if _, err := rep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# transform: prefix") {
		t.Fatalf("transform header missing: %q", buf.String())
	}
}

func TestMeasureTransformDetectsCorruption(t *testing.T) {
	g := New(Config{Sizes: []int{64}, Runs: 1, OpsPerRun: 1})
	encode := func(b []byte) ([]byte, error) { return b, nil }
	badDecode := func(b []byte) ([]byte, error) { return b[:len(b)-1], nil }
	if _, err := g.MeasureTransform("bad", encode, badDecode); err == nil {
		t.Fatal("size-changing round trip not detected")
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := New(Config{})
	if len(g.cfg.Sizes) == 0 || g.cfg.Runs != 4 || g.cfg.Source == nil {
		t.Fatalf("defaults not applied: %+v", g.cfg)
	}
}

func TestRunPropagatesStoreErrors(t *testing.T) {
	store := kv.NewMem("m")
	_ = store.Close()
	g := New(Config{Sizes: []int{8}, Runs: 1, OpsPerRun: 1})
	if _, err := g.Run(context.Background(), store, nil); err == nil {
		t.Fatal("closed store error not propagated")
	}
}
