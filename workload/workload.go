// Package workload implements the UDSM's workload generator (§II-A, §V):
// it issues reads and writes over a sweep of object sizes against any store
// implementing the common key-value interface, averages latency over
// multiple runs, extrapolates cached read latency for user-specified hit
// rates from the measured no-cache and 100%-hit numbers (exactly the
// methodology §V describes for Figs. 11–19), measures
// encryption/compression overhead, and writes results as plain-text tables
// ready for gnuplot or a spreadsheet.
package workload

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"edsc/kv"
)

// DataSource produces the payloads stored during a run. Implementations
// must be deterministic for a given size so reruns are comparable.
type DataSource interface {
	// Data returns a payload of exactly size bytes.
	Data(size int) []byte
}

// SyntheticSource generates synthetic payloads with a controllable
// compressible fraction (0 = random bytes, 1 = fully repetitive).
type SyntheticSource struct {
	// Compressibility in [0,1] is the fraction of each payload filled
	// with repeating text; the rest is pseudo-random.
	Compressibility float64
	// Seed makes payloads reproducible.
	Seed int64
}

// Data implements DataSource.
func (s SyntheticSource) Data(size int) []byte {
	out := make([]byte, size)
	boundary := int(s.Compressibility * float64(size))
	if boundary > size {
		boundary = size
	}
	const pattern = "all work and no play makes a data store client dull. "
	for i := 0; i < boundary; i++ {
		out[i] = pattern[i%len(pattern)]
	}
	rng := rand.New(rand.NewSource(s.Seed + int64(size)))
	rng.Read(out[boundary:])
	return out
}

// FileSource tiles the contents of a user-provided file to the requested
// size ("users can provide their own data objects ... by placing the data
// in input files").
type FileSource struct {
	Path string

	data []byte
}

// Data implements DataSource.
func (f *FileSource) Data(size int) []byte {
	if f.data == nil {
		data, err := os.ReadFile(f.Path)
		if err != nil || len(data) == 0 {
			data = []byte{0}
		}
		f.data = data
	}
	out := make([]byte, size)
	for i := 0; i < size; i += len(f.data) {
		copy(out[i:], f.data)
	}
	return out
}

// FuncSource adapts a user-defined function ("or writing a user-defined
// method to provide the data").
type FuncSource func(size int) []byte

// Data implements DataSource.
func (f FuncSource) Data(size int) []byte { return f(size) }

// Config parameterizes a run.
type Config struct {
	// Sizes is the object-size sweep (bytes). Defaults to DefaultSizes().
	Sizes []int
	// Runs is how many times each point is measured and averaged
	// (the paper averages over 4 runs).
	Runs int
	// OpsPerRun is how many operations one run issues per point; the run
	// latency is their mean.
	OpsPerRun int
	// HitRates are the cache hit rates (percent) to extrapolate for.
	HitRates []float64
	// Source provides payloads (default: SyntheticSource{0.5, 1}).
	Source DataSource
	// KeyPrefix namespaces the generator's keys inside the store.
	KeyPrefix string
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = DefaultSizes()
	}
	if c.Runs <= 0 {
		c.Runs = 4
	}
	if c.OpsPerRun <= 0 {
		c.OpsPerRun = 3
	}
	if c.Source == nil {
		c.Source = SyntheticSource{Compressibility: 0.5, Seed: 1}
	}
	if c.KeyPrefix == "" {
		c.KeyPrefix = "wkld:"
	}
	return c
}

// DefaultSizes is the paper's log sweep: 1 B to 1 MB.
func DefaultSizes() []int {
	return []int{1, 4, 16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
}

// Getter is the read path under test; a cached Getter is the DSCL client's
// read-through path.
type Getter func(ctx context.Context, key string) ([]byte, error)

// Point is the measurement for one object size.
type Point struct {
	Size int
	// Write and Read are the averaged uncached latencies.
	Write time.Duration
	Read  time.Duration
	// CachedRead is the averaged latency at a 100% hit rate (0 when no
	// cached getter was supplied).
	CachedRead time.Duration
}

// ReadAtHitRate extrapolates the read latency at hit rate h (percent),
// as §V does: latency(h) = h*hit + (1-h)*miss, where a miss costs the
// uncached read (the cache probe is folded into CachedRead's measurement).
func (p Point) ReadAtHitRate(h float64) time.Duration {
	frac := h / 100
	return time.Duration(frac*float64(p.CachedRead) + (1-frac)*float64(p.Read))
}

// Report is the outcome of one generator run against one store.
type Report struct {
	Store    string
	HitRates []float64
	Points   []Point
}

// Generator drives workloads against stores.
type Generator struct {
	cfg Config
}

// New builds a Generator.
func New(cfg Config) *Generator { return &Generator{cfg: cfg.withDefaults()} }

// Run measures write and read latencies across the size sweep. When
// cachedGet is non-nil it is primed once per key (one miss) and then
// measured at a 100% hit rate, enabling hit-rate extrapolation.
func (g *Generator) Run(ctx context.Context, store kv.Store, cachedGet Getter) (*Report, error) {
	cfg := g.cfg
	rep := &Report{Store: store.Name(), HitRates: cfg.HitRates}
	for _, size := range cfg.Sizes {
		payload := cfg.Source.Data(size)
		var wTotal, rTotal, cTotal time.Duration
		for run := 0; run < cfg.Runs; run++ {
			for op := 0; op < cfg.OpsPerRun; op++ {
				key := fmt.Sprintf("%s%d-%d-%d", cfg.KeyPrefix, size, run, op)

				start := time.Now()
				if err := store.Put(ctx, key, payload); err != nil {
					return nil, fmt.Errorf("workload: put %s: %w", key, err)
				}
				wTotal += time.Since(start)

				start = time.Now()
				if _, err := store.Get(ctx, key); err != nil {
					return nil, fmt.Errorf("workload: get %s: %w", key, err)
				}
				rTotal += time.Since(start)

				if cachedGet != nil {
					// Prime (miss), then measure the hit.
					if _, err := cachedGet(ctx, key); err != nil {
						return nil, fmt.Errorf("workload: priming cache for %s: %w", key, err)
					}
					start = time.Now()
					if _, err := cachedGet(ctx, key); err != nil {
						return nil, fmt.Errorf("workload: cached get %s: %w", key, err)
					}
					cTotal += time.Since(start)
				}
			}
		}
		n := time.Duration(cfg.Runs * cfg.OpsPerRun)
		p := Point{Size: size, Write: wTotal / n, Read: rTotal / n}
		if cachedGet != nil {
			p.CachedRead = cTotal / n
		}
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}

// WriteTo renders the report as a gnuplot-ready table: one line per size
// with read, write, and one extrapolated column per hit rate.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	if err := write("# store: %s\n# columns: size_bytes read_ms write_ms", r.Store); err != nil {
		return n, err
	}
	for _, h := range r.HitRates {
		if err := write(" read@%.0f%%_ms", h); err != nil {
			return n, err
		}
	}
	if err := write("\n"); err != nil {
		return n, err
	}
	for _, p := range r.Points {
		if err := write("%d %.4f %.4f", p.Size, ms(p.Read), ms(p.Write)); err != nil {
			return n, err
		}
		for _, h := range r.HitRates {
			if err := write(" %.4f", ms(p.ReadAtHitRate(h))); err != nil {
				return n, err
			}
		}
		if err := write("\n"); err != nil {
			return n, err
		}
	}
	return n, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// TransformPoint measures one size for an encode/decode pair (encryption or
// compression).
type TransformPoint struct {
	Size   int
	Encode time.Duration
	Decode time.Duration
	// OutSize is the encoded size (shows compression ratio / envelope
	// overhead).
	OutSize int
}

// TransformReport is the outcome of MeasureTransform.
type TransformReport struct {
	Name   string
	Points []TransformPoint
}

// MeasureTransform times encode and decode across the size sweep — the
// harness behind Figs. 20 and 21 ("the workload generator also measures the
// overhead of encryption and compression").
func (g *Generator) MeasureTransform(name string, encode, decode func([]byte) ([]byte, error)) (*TransformReport, error) {
	cfg := g.cfg
	rep := &TransformReport{Name: name}
	for _, size := range cfg.Sizes {
		payload := cfg.Source.Data(size)
		var eTotal, dTotal time.Duration
		outSize := 0
		for run := 0; run < cfg.Runs*cfg.OpsPerRun; run++ {
			start := time.Now()
			enc, err := encode(payload)
			if err != nil {
				return nil, fmt.Errorf("workload: %s encode: %w", name, err)
			}
			eTotal += time.Since(start)
			outSize = len(enc)

			start = time.Now()
			dec, err := decode(enc)
			if err != nil {
				return nil, fmt.Errorf("workload: %s decode: %w", name, err)
			}
			dTotal += time.Since(start)
			if len(dec) != size {
				return nil, fmt.Errorf("workload: %s round trip changed size: %d -> %d", name, size, len(dec))
			}
		}
		n := time.Duration(cfg.Runs * cfg.OpsPerRun)
		rep.Points = append(rep.Points, TransformPoint{Size: size, Encode: eTotal / n, Decode: dTotal / n, OutSize: outSize})
	}
	return rep, nil
}

// WriteTo renders the transform report as a gnuplot-ready table.
func (r *TransformReport) WriteTo(w io.Writer) (int64, error) {
	var n int64
	m, err := fmt.Fprintf(w, "# transform: %s\n# columns: size_bytes encode_ms decode_ms out_bytes\n", r.Name)
	n += int64(m)
	if err != nil {
		return n, err
	}
	for _, p := range r.Points {
		m, err := fmt.Fprintf(w, "%d %.4f %.4f %d\n", p.Size, ms(p.Encode), ms(p.Decode), p.OutSize)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
