package workload

import (
	"context"
	"fmt"
	"io"
	"time"

	"edsc/kv"
)

// BatchConfig parameterizes RunBatchCompare.
type BatchConfig struct {
	// BatchSizes is the sweep of keys-per-batch (default 4, 16, 64).
	BatchSizes []int
	// ValueSize is the payload size in bytes (default 1 KiB).
	ValueSize int
	// Runs is how many times each point is measured and averaged.
	Runs int
	// Source provides payloads (default: SyntheticSource{0.5, 1}).
	Source DataSource
	// KeyPrefix namespaces the generator's keys inside the store.
	KeyPrefix string
}

func (c BatchConfig) withDefaults() BatchConfig {
	if len(c.BatchSizes) == 0 {
		c.BatchSizes = []int{4, 16, 64}
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 1 << 10
	}
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.Source == nil {
		c.Source = SyntheticSource{Compressibility: 0.5, Seed: 1}
	}
	if c.KeyPrefix == "" {
		c.KeyPrefix = "batch:"
	}
	return c
}

// BatchPoint is the measurement for one batch size: the wall-clock cost of
// moving the whole batch per-key versus through the multi-key interface.
type BatchPoint struct {
	BatchSize int
	PerKeyPut time.Duration // N sequential Puts
	BatchPut  time.Duration // one PutMulti of N pairs
	PerKeyGet time.Duration // N sequential Gets
	BatchGet  time.Duration // one GetMulti of N keys
}

// GetSpeedup is PerKeyGet/BatchGet (how many times faster the batched read
// path moved the same keys).
func (p BatchPoint) GetSpeedup() float64 {
	if p.BatchGet <= 0 {
		return 0
	}
	return float64(p.PerKeyGet) / float64(p.BatchGet)
}

// PutSpeedup is PerKeyPut/BatchPut.
func (p BatchPoint) PutSpeedup() float64 {
	if p.BatchPut <= 0 {
		return 0
	}
	return float64(p.PerKeyPut) / float64(p.BatchPut)
}

// BatchReport is the outcome of RunBatchCompare.
type BatchReport struct {
	Store  string
	Points []BatchPoint
}

// RunBatchCompare measures, for each batch size, a per-key loop against the
// multi-key interface over the same keys. The store's kv.Batch support (or
// the kv fallback fan-out, for stores without one) is exactly what an
// application would get, so the reported speedup is the end-to-end one.
func RunBatchCompare(ctx context.Context, store kv.Store, cfg BatchConfig) (*BatchReport, error) {
	cfg = cfg.withDefaults()
	rep := &BatchReport{Store: store.Name()}
	payload := cfg.Source.Data(cfg.ValueSize)
	for _, n := range cfg.BatchSizes {
		var point BatchPoint
		point.BatchSize = n
		for run := 0; run < cfg.Runs; run++ {
			keys := make([]string, n)
			pairs := make(map[string][]byte, n)
			for i := range keys {
				keys[i] = fmt.Sprintf("%s%d-%d-%d", cfg.KeyPrefix, n, run, i)
				pairs[keys[i]] = payload
			}

			start := time.Now()
			for _, k := range keys {
				if err := store.Put(ctx, k, payload); err != nil {
					return nil, fmt.Errorf("workload: put %s: %w", k, err)
				}
			}
			point.PerKeyPut += time.Since(start)

			start = time.Now()
			if err := kv.PutMulti(ctx, store, pairs); err != nil {
				return nil, fmt.Errorf("workload: putmulti (%d keys): %w", n, err)
			}
			point.BatchPut += time.Since(start)

			start = time.Now()
			for _, k := range keys {
				if _, err := store.Get(ctx, k); err != nil {
					return nil, fmt.Errorf("workload: get %s: %w", k, err)
				}
			}
			point.PerKeyGet += time.Since(start)

			start = time.Now()
			got, err := kv.GetMulti(ctx, store, keys)
			if err != nil {
				return nil, fmt.Errorf("workload: getmulti (%d keys): %w", n, err)
			}
			if len(got) != n {
				return nil, fmt.Errorf("workload: getmulti returned %d of %d keys", len(got), n)
			}
			point.BatchGet += time.Since(start)
		}
		runs := time.Duration(cfg.Runs)
		point.PerKeyPut /= runs
		point.BatchPut /= runs
		point.PerKeyGet /= runs
		point.BatchGet /= runs
		rep.Points = append(rep.Points, point)
	}
	return rep, nil
}

// WriteTo renders the report as a gnuplot-ready table.
func (r *BatchReport) WriteTo(w io.Writer) (int64, error) {
	var n int64
	m, err := fmt.Fprintf(w, "# store: %s\n# columns: batch_size perkey_get_ms batch_get_ms get_speedup perkey_put_ms batch_put_ms put_speedup\n", r.Store)
	n += int64(m)
	if err != nil {
		return n, err
	}
	for _, p := range r.Points {
		m, err := fmt.Fprintf(w, "%d %.4f %.4f %.2f %.4f %.4f %.2f\n",
			p.BatchSize, ms(p.PerKeyGet), ms(p.BatchGet), p.GetSpeedup(),
			ms(p.PerKeyPut), ms(p.BatchPut), p.PutSpeedup())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
