// Package edsc (Enhanced Data Store Clients) reproduces, in Go, the system
// described in "Providing Enhanced Functionality for Data Store Clients"
// (Arun Iyengar, ICDE 2017).
//
// The importable surface lives in subpackages:
//
//   - edsc/kv       — the common key-value interface every store implements
//   - edsc/dscl     — the Data Store Client Library: caching (in-process and
//     remote), encryption, compression, expiration management
//     with revalidation, and delta encoding
//   - edsc/udsm     — the Universal Data Store Manager: store registry,
//     synchronous + asynchronous interfaces, monitoring, and
//     the workload generator, plus constructors for every
//     store kind this repository implements
//   - edsc/future   — futures with completion callbacks and a worker pool
//   - edsc/monitor  — latency statistics (summary + recent detail)
//   - edsc/workload — the workload generator
//
// The root package holds only documentation and the benchmark harness that
// regenerates the paper's figures (see bench_test.go and cmd/udsm-bench).
package edsc
