package edsc

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"edsc/dscl"
	"edsc/kv"
	"edsc/kv/kvtest"
	"edsc/kv/resilient"
	"edsc/udsm"
)

// TestStackConformance wires the middleware-composition suite
// (kvtest.RunStack) over real base stores: every permutation of the
// transform, resilience, and cache layers — plus each alone — must preserve
// and correctly serve each base store's capabilities (CAS on the in-memory
// store, SQL on minisql, versions and batches on cloudsim, TTLs and batches
// on miniredis, the full versioned/batch/CAS surface on the replicated
// cluster tier).
func TestStackConformance(t *testing.T) {
	layers := []kvtest.StackLayer{
		{Name: "transform", Layer: dscl.Layer(
			dscl.WithTransform(dscl.EncryptionFromPassphrase("stack-suite")))},
		{Name: "resilient", Layer: resilient.Layer(
			resilient.Options{MaxRetries: 2, BaseBackoff: 100 * time.Microsecond, RetryWrites: true})},
		{Name: "cache", Layer: dscl.Layer(
			dscl.WithCache(dscl.NewInProcessCache(dscl.InProcessOptions{CopyOnCache: true})))},
	}

	t.Run("mem", func(t *testing.T) {
		kvtest.RunStack(t, func(t *testing.T) (kv.Store, func()) {
			return kv.NewMem("mem"), nil
		}, layers...)
	})

	t.Run("minisql", func(t *testing.T) {
		kvtest.RunStack(t, func(t *testing.T) (kv.Store, func()) {
			st, err := udsm.OpenSQLStore("sql", udsm.SQLStoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return st, nil
		}, layers...)
	})

	t.Run("cloudsim", func(t *testing.T) {
		cloud, err := udsm.StartCloudSim(udsm.ProfileLocal, 1)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = cloud.Close() })
		var n atomic.Int64
		kvtest.RunStack(t, func(t *testing.T) (kv.Store, func()) {
			bucket := fmt.Sprintf("stack%d", n.Add(1))
			return udsm.OpenCloudStore("cloud", cloud.URL(), bucket), nil
		}, layers...)
	})

	t.Run("cluster", func(t *testing.T) {
		kvtest.RunStack(t, func(t *testing.T) (kv.Store, func()) {
			nodes := make([]udsm.ClusterNode, 3)
			for i := range nodes {
				id := fmt.Sprintf("node%d", i)
				nodes[i] = udsm.ClusterNode{ID: id, Store: kv.NewMem(id)}
			}
			c, err := udsm.NewClusterStore("cluster", nodes, udsm.ClusterOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return c, nil
		}, layers...)
	})

	t.Run("miniredis", func(t *testing.T) {
		redis, err := udsm.StartMiniRedis(udsm.MiniRedisOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = redis.Close() })
		var n atomic.Int64
		kvtest.RunStack(t, func(t *testing.T) (kv.Store, func()) {
			prefix := fmt.Sprintf("stack%d:", n.Add(1))
			return udsm.OpenMiniRedis("redis", redis.Addr(), prefix), nil
		}, layers...)
	})
}
