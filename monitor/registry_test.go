package monitor

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func scrape(t *testing.T, g *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestWritePrometheusSeries(t *testing.T) {
	g := NewRegistry()
	r := New("cloud", 32)
	g.Register(r)
	r.Record("get", 5*time.Millisecond, 100, false)
	r.Record("get", 7*time.Millisecond, 200, true)
	r.Record("put", time.Millisecond, 50, false)

	out := scrape(t, g)
	for _, want := range []string{
		`edsc_op_total{store="cloud",op="get"} 2`,
		`edsc_op_total{store="cloud",op="put"} 1`,
		`edsc_op_errors_total{store="cloud",op="get"} 1`,
		`edsc_op_bytes_total{store="cloud",op="get"} 300`,
		`edsc_op_latency_seconds_bucket{store="cloud",op="get",le="+Inf"} 2`,
		`edsc_op_latency_seconds_count{store="cloud",op="get"} 2`,
		"# TYPE edsc_op_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
	// Finite le buckets must be present and parse as seconds.
	if !strings.Contains(out, `op="get",le="0.00`) {
		t.Errorf("no finite latency bucket for get:\n%s", out)
	}
}

func TestRegistryCounterGroups(t *testing.T) {
	g := NewRegistry()
	g.RegisterCounters("edsc_resilience_events_total", map[string]string{"store": "cloud"},
		func() map[string]int64 { return map[string]int64{"retry": 3, "hedge": 1} })
	out := scrape(t, g)
	for _, want := range []string{
		`edsc_resilience_events_total{store="cloud",event="hedge"} 1`,
		`edsc_resilience_events_total{store="cloud",event="retry"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
}

func TestRegistryUnregister(t *testing.T) {
	g := NewRegistry()
	r := New("gone", 32)
	g.Register(r)
	r.Record("get", time.Millisecond, 0, false)
	g.Unregister("gone")
	if out := scrape(t, g); strings.Contains(out, "gone") {
		t.Fatalf("unregistered store still exported:\n%s", out)
	}
}

func TestServeMountsObservabilitySurface(t *testing.T) {
	g := NewRegistry()
	r := New("s", 32)
	g.Register(r)
	r.Record("get", time.Millisecond, 10, false)

	srv, err := Serve("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, `edsc_op_total{store="s",op="get"} 1`) {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body = get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "edsc_monitor") {
		t.Fatalf("/debug/vars = %d (edsc_monitor present: %v)", code, strings.Contains(body, "edsc_monitor"))
	}
	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}
