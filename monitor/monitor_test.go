package monitor

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSummaryStatistics(t *testing.T) {
	r := New("teststore", 64)
	for _, ms := range []int{10, 20, 30} {
		r.Record("get", time.Duration(ms)*time.Millisecond, 100, false)
	}
	snap := r.Snapshot(false)
	if len(snap.Ops) != 1 {
		t.Fatalf("ops = %+v", snap.Ops)
	}
	s := snap.Ops[0]
	if s.Op != "get" || s.Count != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 20*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Min != 10*time.Millisecond || s.Max != 30*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// stddev of {10,20,30} is ~8.165ms
	if s.Stddev < 8*time.Millisecond || s.Stddev > 9*time.Millisecond {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestRingKeepsOnlyRecent(t *testing.T) {
	r := New("s", 16)
	for i := 0; i < 100; i++ {
		r.Record("put", time.Duration(i)*time.Millisecond, 0, false)
	}
	snap := r.Snapshot(true)
	recent := snap.Rec["put"]
	if len(recent) != 16 {
		t.Fatalf("recent samples = %d, want 16", len(recent))
	}
	// Oldest-first: the first retained sample is iteration 84.
	if recent[0].Latency != 84*time.Millisecond || recent[15].Latency != 99*time.Millisecond {
		t.Fatalf("ring order wrong: %v .. %v", recent[0].Latency, recent[15].Latency)
	}
	// Summary still covers the full history.
	if snap.Ops[0].Count != 100 {
		t.Fatalf("count = %d", snap.Ops[0].Count)
	}
	if snap.Ops[0].Min != 0 {
		t.Fatalf("min = %v (summary must cover evicted samples)", snap.Ops[0].Min)
	}
}

func TestPercentilesOverRecent(t *testing.T) {
	r := New("s", 128)
	for i := 1; i <= 100; i++ {
		r.Record("get", time.Duration(i)*time.Millisecond, 0, false)
	}
	s := r.Snapshot(false).Ops[0]
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P95 < 90*time.Millisecond || s.P95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v", s.P95)
	}
	if s.P99 < s.P95 {
		t.Fatalf("p99 (%v) < p95 (%v)", s.P99, s.P95)
	}
}

func TestErrorsCounted(t *testing.T) {
	r := New("s", 32)
	r.Record("get", time.Millisecond, 0, true)
	r.Record("get", time.Millisecond, 0, false)
	r.Record("get", time.Millisecond, 0, true)
	if got := r.Snapshot(false).Ops[0].Errors; got != 2 {
		t.Fatalf("errors = %d", got)
	}
}

func TestTimed(t *testing.T) {
	r := New("s", 32)
	boom := errors.New("boom")
	err := r.Timed("put", 10, func() error {
		time.Sleep(2 * time.Millisecond)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Timed swallowed error: %v", err)
	}
	s := r.Snapshot(false).Ops[0]
	if s.Count != 1 || s.Mean < 2*time.Millisecond || s.Errors != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestMultipleOpsSorted(t *testing.T) {
	r := New("s", 32)
	r.Record("put", time.Millisecond, 0, false)
	r.Record("get", time.Millisecond, 0, false)
	r.Record("delete", time.Millisecond, 0, false)
	snap := r.Snapshot(false)
	if len(snap.Ops) != 3 || snap.Ops[0].Op != "delete" || snap.Ops[2].Op != "put" {
		t.Fatalf("ops order = %+v", snap.Ops)
	}
}

func TestReset(t *testing.T) {
	r := New("s", 32)
	r.Record("get", time.Millisecond, 0, false)
	r.Reset()
	if len(r.Snapshot(false).Ops) != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestTextRendering(t *testing.T) {
	r := New("mystore", 32)
	r.Record("get", 5*time.Millisecond, 0, false)
	text := r.Snapshot(false).Text()
	if !strings.Contains(text, "mystore") || !strings.Contains(text, "get") {
		t.Fatalf("text = %q", text)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := New("s", 32)
	r.Record("get", 7*time.Millisecond, 42, false)
	snap := r.Snapshot(true)
	data, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Store != "s" || len(got.Ops) != 1 || got.Ops[0].Mean != 7*time.Millisecond {
		t.Fatalf("round trip = %+v", got)
	}
	if len(got.Rec["get"]) != 1 || got.Rec["get"][0].Bytes != 42 {
		t.Fatalf("recent round trip = %+v", got.Rec)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New("s", 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record("get", time.Microsecond, 1, false)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot(false).Ops[0].Count; got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
}

func TestMinimumRingSize(t *testing.T) {
	r := New("s", 1)
	for i := 0; i < 20; i++ {
		r.Record("get", time.Millisecond, 0, false)
	}
	if got := len(r.Snapshot(true).Rec["get"]); got != 16 {
		t.Fatalf("ring size = %d, want floor of 16", got)
	}
}
