package monitor

import (
	"sync"
	"testing"
	"time"
)

// TestNearestRankPercentile pins the nearest-rank definition: the smallest
// sample with at least q*n samples at or below it. The old truncating
// implementation returned sorted[int(q*n)], which reads one past the rank
// (p99 of 100 samples gave the maximum, p50 of 2 gave the larger).
func TestNearestRankPercentile(t *testing.T) {
	mk := func(n int) []time.Duration {
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Duration(i+1) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"single p50", mk(1), 0.50, 1 * time.Millisecond},
		{"single p99", mk(1), 0.99, 1 * time.Millisecond},
		{"two p50 is lower", mk(2), 0.50, 1 * time.Millisecond},
		{"two p99", mk(2), 0.99, 2 * time.Millisecond},
		{"hundred p50", mk(100), 0.50, 50 * time.Millisecond},
		{"hundred p95", mk(100), 0.95, 95 * time.Millisecond},
		{"hundred p99 not max", mk(100), 0.99, 99 * time.Millisecond},
		{"ring-sized p99", mk(256), 0.99, 254 * time.Millisecond}, // ceil(253.44)
		{"empty", nil, 0.99, 0},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.q); got != c.want {
			t.Errorf("%s: percentile(q=%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
}

// TestFullHistoryPercentileDivergesFromRing is the headline property of the
// v2 recorder: with a latency regression early in the run and >10k fast ops
// after it, the ring (recent window) forgets the tail entirely while the
// full-history histogram still reports it.
func TestFullHistoryPercentileDivergesFromRing(t *testing.T) {
	r := New("s", 256)
	for i := 0; i < 200; i++ {
		r.Record("get", 500*time.Millisecond, 0, false)
	}
	for i := 0; i < 9800; i++ {
		r.Record("get", time.Millisecond, 0, false)
	}
	s := r.Snapshot(false).Ops[0]
	if s.Count != 10000 {
		t.Fatalf("count = %d", s.Count)
	}
	// Sorted by value the slow 200 are the top 2%, so full-history p99
	// (rank 9900 > 9800 fast samples) must land in the slow band.
	if s.P99 < 400*time.Millisecond {
		t.Fatalf("full-history p99 = %v, lost the slow tail", s.P99)
	}
	if s.P999 < s.P99 {
		t.Fatalf("p999 %v < p99 %v", s.P999, s.P99)
	}
	// The ring holds only the last 256 samples — all fast.
	if s.RingP99 > 10*time.Millisecond {
		t.Fatalf("ring p99 = %v, want ~1ms (ring must only see recent ops)", s.RingP99)
	}
	if s.P99 < 100*s.RingP99 {
		t.Fatalf("expected divergence: full p99 %v vs ring p99 %v", s.P99, s.RingP99)
	}
}

// TestConcurrentRecordSnapshotReset exercises the striped hot path against
// snapshots and resets under the race detector.
func TestConcurrentRecordSnapshotReset(t *testing.T) {
	r := New("s", 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record("get", time.Duration(i%1000)*time.Microsecond, i, i%7 == 0)
				r.Record("put", time.Millisecond, 0, false)
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			snap := r.Snapshot(i%2 == 0)
			for _, op := range snap.Ops {
				if op.Count < 0 {
					t.Errorf("negative count in %+v", op)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			time.Sleep(3 * time.Millisecond)
			r.Reset()
		}
	}()
	time.Sleep(60 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// BenchmarkRecordParallel measures the striped hot path under contention;
// compare with -cpu 1,4,16 to see that Record scales instead of serializing
// on one recorder-wide mutex.
func BenchmarkRecordParallel(b *testing.B) {
	r := New("bench", 256)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record("get", 123*time.Microsecond, 64, false)
		}
	})
}

func BenchmarkSnapshotWhileRecording(b *testing.B) {
	r := New("bench", 256)
	for i := 0; i < 10000; i++ {
		r.Record("get", time.Duration(i)*time.Microsecond, 0, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot(false)
	}
}
