// Request tracing: a context-propagated request ID plus lightweight span
// records, so a slow operation can be explained layer by layer (cache
// fetch, resilience retries, individual HTTP attempts) after the fact.
// Tracing is pull-based and cheap: layers call AddSpan, which is a no-op
// unless an enclosing layer started a trace with StartTrace, and finished
// traces are retained by a Recorder only when they exceed its slow
// threshold (SetSlowThreshold).
package monitor

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type ctxKey int

const (
	ridKey ctxKey = iota
	traceKey
)

// maxSpans bounds the spans retained per trace (a retry storm must not
// grow a trace without bound).
const maxSpans = 64

var (
	ridSeq    atomic.Uint64
	ridPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "req"
		}
		return hex.EncodeToString(b[:])
	}()
)

func newRequestID() string {
	return fmt.Sprintf("%s-%06d", ridPrefix, ridSeq.Add(1))
}

// WithRequestID returns a context carrying a request ID, generating one
// when ctx has none, plus the ID itself. IDs are unique within a process
// and prefixed with a per-process random tag, so IDs from several clients
// stamped onto one server's requests stay distinguishable.
func WithRequestID(ctx context.Context) (context.Context, string) {
	if id := RequestID(ctx); id != "" {
		return ctx, id
	}
	id := newRequestID()
	return context.WithValue(ctx, ridKey, id), id
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey).(string)
	return id
}

// Span is one timed step inside a trace: which layer did what, starting at
// Offset into the request, for Dur.
type Span struct {
	Layer  string        `json:"layer"`
	Op     string        `json:"op"`
	Offset time.Duration `json:"offset"`
	Dur    time.Duration `json:"dur"`
	Err    bool          `json:"err,omitempty"`
}

// Trace is a finished slow-request record retained by a Recorder.
type Trace struct {
	ID    string        `json:"id"`
	Op    string        `json:"op"`
	Begin time.Time     `json:"begin"`
	Total time.Duration `json:"total"`
	Err   bool          `json:"err,omitempty"`
	Spans []Span        `json:"spans,omitempty"`
}

// String renders the trace as one line per span.
func (t Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "slow %s op=%s total=%v", t.ID, t.Op, t.Total)
	if t.Err {
		sb.WriteString(" err")
	}
	for _, s := range t.Spans {
		fmt.Fprintf(&sb, "\n  +%-12v %-10s %-20s %v", s.Offset, s.Layer, s.Op, s.Dur)
		if s.Err {
			sb.WriteString(" err")
		}
	}
	return sb.String()
}

// ActiveTrace collects spans for one in-flight request. It is created by
// StartTrace and safe for concurrent AddSpan calls (hedged attempts).
type ActiveTrace struct {
	id    string
	begin time.Time

	mu    sync.Mutex
	spans []Span
}

// ID returns the trace's request ID.
func (t *ActiveTrace) ID() string { return t.id }

// StartTrace begins a trace for one request, ensuring ctx carries a request
// ID. The returned ActiveTrace is non-nil only on the outermost call: when
// ctx already carries a trace, inner layers get back (ctx, nil) and their
// spans accrue to the enclosing trace, so stacked wrappers (UDSM over DSCL
// over resilient) produce one trace per request, finished once.
func StartTrace(ctx context.Context) (context.Context, *ActiveTrace) {
	if _, ok := ctx.Value(traceKey).(*ActiveTrace); ok {
		return ctx, nil
	}
	ctx, id := WithRequestID(ctx)
	tr := &ActiveTrace{id: id, begin: time.Now()}
	return context.WithValue(ctx, traceKey, tr), tr
}

// AddSpan records one step of the active trace in ctx: layer/op, started at
// start and ending now. Without an active trace it is a no-op.
func AddSpan(ctx context.Context, layer, op string, start time.Time, failed bool) {
	tr, ok := ctx.Value(traceKey).(*ActiveTrace)
	if !ok {
		return
	}
	tr.mu.Lock()
	if len(tr.spans) < maxSpans {
		tr.spans = append(tr.spans, Span{
			Layer:  layer,
			Op:     op,
			Offset: start.Sub(tr.begin),
			Dur:    time.Since(start),
			Err:    failed,
		})
	}
	tr.mu.Unlock()
}

// FinishTrace completes tr (as returned by StartTrace; nil is ignored) for
// an operation that took total. When the recorder's slow threshold is set
// and total reaches it, the trace is retained for snapshots, evicting the
// oldest retained trace when full.
func (r *Recorder) FinishTrace(tr *ActiveTrace, op string, total time.Duration, failed bool) {
	if tr == nil {
		return
	}
	thresh := r.slowThresh.Load()
	if thresh <= 0 || int64(total) < thresh {
		return
	}
	tr.mu.Lock()
	spans := append([]Span(nil), tr.spans...)
	tr.mu.Unlock()
	rec := Trace{ID: tr.id, Op: op, Begin: tr.begin, Total: total, Err: failed, Spans: spans}
	r.slowMu.Lock()
	if len(r.slow) >= r.slowCap {
		copy(r.slow, r.slow[1:])
		r.slow = r.slow[:len(r.slow)-1]
	}
	r.slow = append(r.slow, rec)
	r.slowMu.Unlock()
}
