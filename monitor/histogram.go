package monitor

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// hist is a log-linear latency histogram over the *full* operation history:
// the HDR-histogram bucketing scheme with 32 linear sub-buckets per power of
// two, giving ~3% relative resolution from 1ns up to the full int64
// nanosecond range in a fixed 1888-bucket array. Recording is a single
// atomic increment, so the hot path never takes a lock, and memory stays
// bounded no matter how many operations are observed — the complement of the
// paper's recent-sample ring, which keeps detail but only for a window.
type hist struct {
	counts []atomic.Uint64
}

const (
	histSubBits = 5
	histSub     = 1 << histSubBits // linear sub-buckets per octave
	// histLen covers every representable index: values below histSub get
	// one bucket each; above that, each power of two is split into histSub
	// sub-buckets, up to bit 62 (the int64 nanosecond ceiling).
	histLen = (62-histSubBits)*histSub + 2*histSub
)

func newHist() *hist { return &hist{counts: make([]atomic.Uint64, histLen)} }

// histIndex maps a nanosecond latency to its bucket.
func histIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	if u < histSub {
		return int(u)
	}
	b := bits.Len64(u) - 1 // position of the highest set bit
	sub := u >> uint(b-histSubBits)
	return (b-histSubBits)*histSub + int(sub)
}

// histUpper is the largest nanosecond value bucket i can hold (the "le"
// bound of the bucket, inclusive).
func histUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	b := i/histSub - 1 + histSubBits
	sub := uint64(histSub + i%histSub)
	return int64((sub+1)<<uint(b-histSubBits)) - 1
}

func (h *hist) record(latency time.Duration) {
	h.counts[histIndex(latency.Nanoseconds())].Add(1)
}

// snapshot copies the bucket counts (not atomic across buckets; counts may
// lag one another by in-flight records, which is fine for monitoring).
func (h *hist) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// histPercentile computes the nearest-rank percentile from a bucket
// snapshot, returning the upper bound of the bucket containing that rank.
func histPercentile(counts []uint64, total uint64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return time.Duration(histUpper(i))
		}
	}
	return time.Duration(histUpper(len(counts) - 1))
}

// Bucket is one non-empty histogram bucket in a Summary: Count observations
// were at most Le. Counts are cumulative (Prometheus "le" semantics).
type Bucket struct {
	Le    time.Duration `json:"le"`
	Count uint64        `json:"n"`
}

// histBuckets converts a bucket snapshot into the cumulative non-empty
// Bucket list carried by Summary.
func histBuckets(counts []uint64) []Bucket {
	var out []Bucket
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, Bucket{Le: time.Duration(histUpper(i)), Count: cum})
	}
	return out
}
