package monitor

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestWithRequestIDStable(t *testing.T) {
	ctx, id := WithRequestID(context.Background())
	if id == "" || RequestID(ctx) != id {
		t.Fatalf("id = %q, ctx carries %q", id, RequestID(ctx))
	}
	// A second call must not mint a new ID.
	ctx2, id2 := WithRequestID(ctx)
	if id2 != id || RequestID(ctx2) != id {
		t.Fatalf("request ID regenerated: %q -> %q", id, id2)
	}
	_, other := WithRequestID(context.Background())
	if other == id {
		t.Fatal("distinct requests share an ID")
	}
}

func TestStartTraceOutermostOnly(t *testing.T) {
	ctx, tr := StartTrace(context.Background())
	if tr == nil {
		t.Fatal("outermost StartTrace returned nil trace")
	}
	if tr.ID() == "" || tr.ID() != RequestID(ctx) {
		t.Fatalf("trace id %q vs ctx id %q", tr.ID(), RequestID(ctx))
	}
	// Inner layers see the existing trace and must not start another.
	_, inner := StartTrace(ctx)
	if inner != nil {
		t.Fatal("nested StartTrace returned a second trace")
	}
}

func TestAddSpanAccruesToEnclosingTrace(t *testing.T) {
	ctx, tr := StartTrace(context.Background())
	start := time.Now().Add(-5 * time.Millisecond)
	AddSpan(ctx, "resilient", "get attempt 1", start, true)
	AddSpan(ctx, "http", "GET b", start, false)
	// No-trace contexts are a cheap no-op.
	AddSpan(context.Background(), "http", "GET b", start, false)

	r := New("s", 16)
	r.SetSlowThreshold(time.Millisecond)
	r.FinishTrace(tr, "get", 10*time.Millisecond, false)
	snap := r.Snapshot(false)
	if len(snap.Slow) != 1 {
		t.Fatalf("slow traces = %d, want 1", len(snap.Slow))
	}
	got := snap.Slow[0]
	if got.Op != "get" || got.Total != 10*time.Millisecond || len(got.Spans) != 2 {
		t.Fatalf("trace = %+v", got)
	}
	if got.Spans[0].Layer != "resilient" || !got.Spans[0].Err || got.Spans[1].Layer != "http" {
		t.Fatalf("spans = %+v", got.Spans)
	}
	if !strings.Contains(got.String(), "resilient") {
		t.Fatalf("rendering = %q", got.String())
	}
	if !strings.Contains(snap.Text(), got.ID) {
		t.Fatal("snapshot text omits slow traces")
	}
}

func TestFinishTraceRetention(t *testing.T) {
	r := New("s", 16)
	// Threshold unset: nothing retained.
	ctx, tr := StartTrace(context.Background())
	_ = ctx
	r.FinishTrace(tr, "get", time.Hour, false)
	if n := len(r.Snapshot(false).Slow); n != 0 {
		t.Fatalf("retained %d traces with tracing disabled", n)
	}

	r.SetSlowThreshold(10 * time.Millisecond)
	_, fast := StartTrace(context.Background())
	r.FinishTrace(fast, "get", 5*time.Millisecond, false) // under threshold
	_, slow := StartTrace(context.Background())
	r.FinishTrace(slow, "get", 15*time.Millisecond, false)
	r.FinishTrace(nil, "get", time.Hour, false) // inner layer: ignored
	if n := len(r.Snapshot(false).Slow); n != 1 {
		t.Fatalf("retained %d traces, want 1", n)
	}

	// The buffer is bounded, evicting oldest-first.
	for i := 0; i < 100; i++ {
		_, tr := StartTrace(context.Background())
		r.FinishTrace(tr, "get", time.Duration(20+i)*time.Millisecond, false)
	}
	slowTraces := r.Snapshot(false).Slow
	if len(slowTraces) != r.slowCap {
		t.Fatalf("retained %d, want cap %d", len(slowTraces), r.slowCap)
	}
	if got := slowTraces[len(slowTraces)-1].Total; got != 119*time.Millisecond {
		t.Fatalf("newest retained = %v, want 119ms", got)
	}

	// Reset clears retained traces too.
	r.Reset()
	if n := len(r.Snapshot(false).Slow); n != 0 {
		t.Fatalf("Reset left %d traces", n)
	}
}

func TestSpanCountBounded(t *testing.T) {
	ctx, tr := StartTrace(context.Background())
	for i := 0; i < 10*maxSpans; i++ {
		AddSpan(ctx, "l", "op", time.Now(), false)
	}
	r := New("s", 16)
	r.SetSlowThreshold(1)
	r.FinishTrace(tr, "get", time.Second, false)
	if n := len(r.Snapshot(false).Slow[0].Spans); n != maxSpans {
		t.Fatalf("spans = %d, want cap %d", n, maxSpans)
	}
}
