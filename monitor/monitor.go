// Package monitor implements the UDSM's performance monitoring (§II-A): it
// collects summary statistics (count, mean, min, max, standard deviation)
// for every operation type, plus detailed per-request latencies for recent
// requests in a bounded ring buffer — "collect detailed data for recent
// requests while only retaining summary statistics for older data", exactly
// as the paper specifies. Snapshots can be rendered as text and persisted
// into any data store supported by the UDSM.
//
// Beyond the paper's design, the recorder keeps a log-bucketed histogram
// over the full operation history, so reported p50/p95/p99/p999 are true
// full-history percentiles with bounded memory; the recent ring still
// provides exact per-request detail (and its own window percentiles). The
// hot path is lock-striped: the histogram is a single atomic increment and
// the moment statistics and ring are sharded across per-stripe mutexes, so
// concurrent Record calls from many goroutines do not serialize on one
// lock. Recorders can be exported over HTTP in Prometheus text format (see
// Registry) and retain span traces for slow requests (see StartTrace).
package monitor

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder accumulates latency observations for the operations of one data
// store. It is safe for concurrent use.
type Recorder struct {
	store   string
	recent  int // per-op retained samples, a multiple of nstripes
	nstripe int // power of two

	slowThresh atomic.Int64 // ns; 0 disables slow-trace retention

	slowMu  sync.Mutex
	slow    []Trace
	slowCap int

	mu  sync.RWMutex // guards the ops map only; opStats have their own locks
	ops map[string]*opStats
}

// opStats is the per-operation accumulator: an atomic full-history
// histogram plus lock-striped moment statistics and recent-sample rings.
type opStats struct {
	hist    *hist
	rr      atomic.Uint64 // round-robin stripe cursor
	stripes []stripe
}

// stripe holds one shard of the moment statistics and the recent ring.
// Updates lock only this stripe, so Record calls on different stripes
// proceed in parallel.
type stripe struct {
	mu    sync.Mutex
	count int64
	errs  int64
	bytes int64
	sum   float64 // seconds
	sumSq float64
	min   float64
	max   float64

	ring []Sample
	next int
	full bool

	_ [64]byte // keep adjacent stripes off one cache line
}

// Sample is one retained detailed observation.
type Sample struct {
	When    time.Time     `json:"when"`
	Latency time.Duration `json:"latency"`
	Bytes   int           `json:"bytes"`
	Err     bool          `json:"err,omitempty"`
}

// stripeCount picks the number of stripes: the next power of two at or
// above GOMAXPROCS, capped so small recent windows still spread evenly.
func stripeCount() int {
	n := runtime.GOMAXPROCS(0)
	p := 1
	for p < n && p < 16 {
		p <<= 1
	}
	return p
}

// New builds a Recorder for the named store, retaining recentN detailed
// samples per operation (minimum 16; rounded up to a multiple of the stripe
// count so the ring shards evenly).
func New(store string, recentN int) *Recorder {
	if recentN < 16 {
		recentN = 16
	}
	ns := stripeCount()
	if rem := recentN % ns; rem != 0 {
		recentN += ns - rem
	}
	return &Recorder{
		store:   store,
		recent:  recentN,
		nstripe: ns,
		slowCap: 32,
		ops:     make(map[string]*opStats),
	}
}

// Store returns the monitored store's name.
func (r *Recorder) Store() string { return r.store }

// SetSlowThreshold enables slow-request trace retention: a finished trace
// whose total latency is at least d is kept (bounded, newest-first win) and
// surfaced in snapshots. d <= 0 disables retention (the default).
func (r *Recorder) SetSlowThreshold(d time.Duration) { r.slowThresh.Store(int64(d)) }

// getOp returns the accumulator for op, creating it on first use.
func (r *Recorder) getOp(op string) *opStats {
	r.mu.RLock()
	st := r.ops[op]
	r.mu.RUnlock()
	if st != nil {
		return st
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st = r.ops[op]; st != nil {
		return st
	}
	st = &opStats{hist: newHist(), stripes: make([]stripe, r.nstripe)}
	per := r.recent / r.nstripe
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.ring = make([]Sample, per)
		sp.min = math.Inf(1)
		sp.max = math.Inf(-1)
	}
	r.ops[op] = st
	return st
}

// Record adds one observation for op ("get", "put", ...).
func (r *Recorder) Record(op string, latency time.Duration, bytes int, failed bool) {
	st := r.getOp(op)
	st.hist.record(latency)

	sec := latency.Seconds()
	sp := &st.stripes[st.rr.Add(1)&uint64(len(st.stripes)-1)]
	sp.mu.Lock()
	sp.count++
	sp.sum += sec
	sp.sumSq += sec * sec
	if sec < sp.min {
		sp.min = sec
	}
	if sec > sp.max {
		sp.max = sec
	}
	if failed {
		sp.errs++
	}
	sp.bytes += int64(bytes)
	sp.ring[sp.next] = Sample{When: time.Now(), Latency: latency, Bytes: bytes, Err: failed}
	sp.next++
	if sp.next == len(sp.ring) {
		sp.next = 0
		sp.full = true
	}
	sp.mu.Unlock()
}

// Timed runs fn, recording its latency under op. It returns fn's error.
func (r *Recorder) Timed(op string, bytes int, fn func() error) error {
	start := time.Now()
	err := fn()
	r.Record(op, time.Since(start), bytes, err != nil)
	return err
}

// Summary is the retained statistics for one operation.
type Summary struct {
	Op     string        `json:"op"`
	Count  int64         `json:"count"`
	Mean   time.Duration `json:"mean"`
	Min    time.Duration `json:"min"`
	Max    time.Duration `json:"max"`
	Stddev time.Duration `json:"stddev"`
	// P50..P999 are true full-history percentiles from the log-bucketed
	// histogram (±~3% value resolution, exact ranks).
	P50  time.Duration `json:"p50"`
	P95  time.Duration `json:"p95"`
	P99  time.Duration `json:"p99"`
	P999 time.Duration `json:"p999"`
	// RingP50..RingP99 are exact percentiles over only the retained recent
	// samples — the paper's detailed window, kept for comparison.
	RingP50 time.Duration `json:"ring_p50"`
	RingP95 time.Duration `json:"ring_p95"`
	RingP99 time.Duration `json:"ring_p99"`
	// Errors counts failed operations over the full history.
	Errors int `json:"errors"`
	// Bytes is the total payload bytes observed.
	Bytes int64 `json:"bytes"`
	// Buckets are the non-empty histogram buckets, cumulative ("le").
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures all operations of one store at a point in time.
type Snapshot struct {
	Store string              `json:"store"`
	Taken time.Time           `json:"taken"`
	Ops   []Summary           `json:"ops"`
	Rec   map[string][]Sample `json:"recent,omitempty"`
	// Slow holds retained slow-request traces (see SetSlowThreshold),
	// oldest first.
	Slow []Trace `json:"slow,omitempty"`
}

// Snapshot returns current statistics. When includeRecent is true the
// detailed recent samples are attached (oldest first). Counts are collected
// per stripe without a global lock, so a snapshot taken during heavy
// traffic may be off by the handful of operations in flight.
func (r *Recorder) Snapshot(includeRecent bool) Snapshot {
	r.mu.RLock()
	names := make([]string, 0, len(r.ops))
	stats := make(map[string]*opStats, len(r.ops))
	for op, st := range r.ops {
		names = append(names, op)
		stats[op] = st
	}
	r.mu.RUnlock()
	sort.Strings(names)

	snap := Snapshot{Store: r.store, Taken: time.Now()}
	if includeRecent {
		snap.Rec = make(map[string][]Sample)
	}
	for _, op := range names {
		st := stats[op]
		sum, recent := st.summarize(op)
		if len(recent) > 0 {
			lat := make([]time.Duration, len(recent))
			for i, s := range recent {
				lat[i] = s.Latency
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			sum.RingP50 = percentile(lat, 0.50)
			sum.RingP95 = percentile(lat, 0.95)
			sum.RingP99 = percentile(lat, 0.99)
		}
		snap.Ops = append(snap.Ops, sum)
		if includeRecent {
			snap.Rec[op] = recent
		}
	}
	r.slowMu.Lock()
	if len(r.slow) > 0 {
		snap.Slow = append([]Trace(nil), r.slow...)
	}
	r.slowMu.Unlock()
	return snap
}

// summarize aggregates the stripes and histogram of one op into a Summary
// plus the merged recent samples (oldest first).
func (st *opStats) summarize(op string) (Summary, []Sample) {
	var (
		count, errs, bytes int64
		sum, sumSq         float64
		min                = math.Inf(1)
		max                = math.Inf(-1)
		recent             []Sample
	)
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.Lock()
		count += sp.count
		errs += sp.errs
		bytes += sp.bytes
		sum += sp.sum
		sumSq += sp.sumSq
		if sp.min < min {
			min = sp.min
		}
		if sp.max > max {
			max = sp.max
		}
		if sp.full {
			recent = append(recent, sp.ring[sp.next:]...)
			recent = append(recent, sp.ring[:sp.next]...)
		} else {
			recent = append(recent, sp.ring[:sp.next]...)
		}
		sp.mu.Unlock()
	}
	sort.Slice(recent, func(i, j int) bool { return recent[i].When.Before(recent[j].When) })

	s := Summary{Op: op, Count: count, Errors: int(errs), Bytes: bytes}
	if count > 0 {
		mean := sum / float64(count)
		s.Mean = time.Duration(mean * float64(time.Second))
		s.Min = time.Duration(min * float64(time.Second))
		s.Max = time.Duration(max * float64(time.Second))
		variance := sumSq/float64(count) - mean*mean
		if variance > 0 {
			s.Stddev = time.Duration(math.Sqrt(variance) * float64(time.Second))
		}
	}
	counts := st.hist.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total > 0 {
		s.P50 = histPercentile(counts, total, 0.50)
		s.P95 = histPercentile(counts, total, 0.95)
		s.P99 = histPercentile(counts, total, 0.99)
		s.P999 = histPercentile(counts, total, 0.999)
		s.Buckets = histBuckets(counts)
	}
	return s, recent
}

// percentile is the nearest-rank percentile over sorted samples: the
// smallest value such that at least q of the samples are at or below it
// (rank ceil(q*n)). Truncating the rank instead would bias p95/p99 low on
// small sample counts.
func percentile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// Reset clears all statistics, including retained slow traces.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.ops = make(map[string]*opStats)
	r.mu.Unlock()
	r.slowMu.Lock()
	r.slow = nil
	r.slowMu.Unlock()
}

// Text renders the snapshot as an aligned table, followed by retained slow
// traces, if any.
func (s Snapshot) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "store %s (taken %s)\n", s.Store, s.Taken.Format(time.RFC3339))
	fmt.Fprintf(&sb, "%-10s %8s %12s %12s %12s %12s %12s %12s %12s %12s %6s\n",
		"op", "count", "mean", "min", "max", "stddev", "p50", "p95", "p99", "p999", "errs")
	for _, o := range s.Ops {
		fmt.Fprintf(&sb, "%-10s %8d %12s %12s %12s %12s %12s %12s %12s %12s %6d\n",
			o.Op, o.Count, o.Mean, o.Min, o.Max, o.Stddev, o.P50, o.P95, o.P99, o.P999, o.Errors)
	}
	for _, tr := range s.Slow {
		sb.WriteString(tr.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Marshal serializes the snapshot (for persisting into a data store).
func (s Snapshot) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalSnapshot reverses Marshal.
func UnmarshalSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	err := json.Unmarshal(data, &s)
	return s, err
}
