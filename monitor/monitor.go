// Package monitor implements the UDSM's performance monitoring (§II-A): it
// collects summary statistics (count, mean, min, max, standard deviation)
// for every operation type, plus detailed per-request latencies for recent
// requests in a bounded ring buffer — "collect detailed data for recent
// requests while only retaining summary statistics for older data", exactly
// as the paper specifies. Snapshots can be rendered as text and persisted
// into any data store supported by the UDSM.
package monitor

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Recorder accumulates latency observations for the operations of one data
// store. It is safe for concurrent use.
type Recorder struct {
	store  string
	recent int

	mu  sync.Mutex
	ops map[string]*opStats
}

// opStats is the per-operation accumulator: running summary over all
// observations plus a ring of recent samples.
type opStats struct {
	count int64
	sum   float64 // seconds
	sumSq float64
	min   float64
	max   float64

	ring []Sample
	next int
	full bool
}

// Sample is one retained detailed observation.
type Sample struct {
	When    time.Time     `json:"when"`
	Latency time.Duration `json:"latency"`
	Bytes   int           `json:"bytes"`
	Err     bool          `json:"err,omitempty"`
}

// New builds a Recorder for the named store, retaining recentN detailed
// samples per operation (minimum 16).
func New(store string, recentN int) *Recorder {
	if recentN < 16 {
		recentN = 16
	}
	return &Recorder{store: store, recent: recentN, ops: make(map[string]*opStats)}
}

// Store returns the monitored store's name.
func (r *Recorder) Store() string { return r.store }

// Record adds one observation for op ("get", "put", ...).
func (r *Recorder) Record(op string, latency time.Duration, bytes int, failed bool) {
	sec := latency.Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.ops[op]
	if !ok {
		st = &opStats{ring: make([]Sample, r.recent), min: math.Inf(1), max: math.Inf(-1)}
		r.ops[op] = st
	}
	st.count++
	st.sum += sec
	st.sumSq += sec * sec
	if sec < st.min {
		st.min = sec
	}
	if sec > st.max {
		st.max = sec
	}
	st.ring[st.next] = Sample{When: time.Now(), Latency: latency, Bytes: bytes, Err: failed}
	st.next++
	if st.next == len(st.ring) {
		st.next = 0
		st.full = true
	}
}

// Timed runs fn, recording its latency under op. It returns fn's error.
func (r *Recorder) Timed(op string, bytes int, fn func() error) error {
	start := time.Now()
	err := fn()
	r.Record(op, time.Since(start), bytes, err != nil)
	return err
}

// Summary is the retained statistics for one operation.
type Summary struct {
	Op     string        `json:"op"`
	Count  int64         `json:"count"`
	Mean   time.Duration `json:"mean"`
	Min    time.Duration `json:"min"`
	Max    time.Duration `json:"max"`
	Stddev time.Duration `json:"stddev"`
	// P50/P95/P99 are percentiles over the retained recent samples (the
	// full history keeps only the summary).
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
	// Errors counts failed recent samples.
	Errors int `json:"errors"`
}

// Snapshot captures all operations of one store at a point in time.
type Snapshot struct {
	Store string              `json:"store"`
	Taken time.Time           `json:"taken"`
	Ops   []Summary           `json:"ops"`
	Rec   map[string][]Sample `json:"recent,omitempty"`
}

// Snapshot returns current statistics. When includeRecent is true the
// detailed recent samples are attached (oldest first).
func (r *Recorder) Snapshot(includeRecent bool) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Store: r.store, Taken: time.Now()}
	if includeRecent {
		snap.Rec = make(map[string][]Sample)
	}
	names := make([]string, 0, len(r.ops))
	for op := range r.ops {
		names = append(names, op)
	}
	sort.Strings(names)
	for _, op := range names {
		st := r.ops[op]
		recent := st.samplesLocked()
		sum := Summary{Op: op, Count: st.count}
		if st.count > 0 {
			mean := st.sum / float64(st.count)
			sum.Mean = time.Duration(mean * float64(time.Second))
			sum.Min = time.Duration(st.min * float64(time.Second))
			sum.Max = time.Duration(st.max * float64(time.Second))
			variance := st.sumSq/float64(st.count) - mean*mean
			if variance > 0 {
				sum.Stddev = time.Duration(math.Sqrt(variance) * float64(time.Second))
			}
		}
		if len(recent) > 0 {
			lat := make([]time.Duration, 0, len(recent))
			for _, s := range recent {
				lat = append(lat, s.Latency)
				if s.Err {
					sum.Errors++
				}
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			sum.P50 = percentile(lat, 0.50)
			sum.P95 = percentile(lat, 0.95)
			sum.P99 = percentile(lat, 0.99)
		}
		snap.Ops = append(snap.Ops, sum)
		if includeRecent {
			snap.Rec[op] = recent
		}
	}
	return snap
}

// samplesLocked returns the ring contents oldest-first. Caller holds r.mu.
func (st *opStats) samplesLocked() []Sample {
	if !st.full {
		return append([]Sample(nil), st.ring[:st.next]...)
	}
	out := make([]Sample, 0, len(st.ring))
	out = append(out, st.ring[st.next:]...)
	out = append(out, st.ring[:st.next]...)
	return out
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Reset clears all statistics.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.ops = make(map[string]*opStats)
	r.mu.Unlock()
}

// Text renders the snapshot as an aligned table.
func (s Snapshot) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "store %s (taken %s)\n", s.Store, s.Taken.Format(time.RFC3339))
	fmt.Fprintf(&sb, "%-10s %8s %12s %12s %12s %12s %12s %12s %12s %6s\n",
		"op", "count", "mean", "min", "max", "stddev", "p50", "p95", "p99", "errs")
	for _, o := range s.Ops {
		fmt.Fprintf(&sb, "%-10s %8d %12s %12s %12s %12s %12s %12s %12s %6d\n",
			o.Op, o.Count, o.Mean, o.Min, o.Max, o.Stddev, o.P50, o.P95, o.P99, o.Errors)
	}
	return sb.String()
}

// Marshal serializes the snapshot (for persisting into a data store).
func (s Snapshot) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalSnapshot reverses Marshal.
func UnmarshalSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	err := json.Unmarshal(data, &s)
	return s, err
}
