// Metrics export: a Registry aggregates Recorders (and auxiliary counter
// groups, such as the resilience wrapper's retry/hedge/breaker totals) and
// renders them in Prometheus text exposition format. Mount attaches the
// /metrics endpoint plus the standard Go debug surface (expvar, pprof) to
// any mux; Serve runs a standalone observability listener for servers whose
// primary protocol is not HTTP (miniredis) and for CLIs.
package monitor

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is a set of metric sources rendered together. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	recs     map[string]*Recorder // keyed by store name
	counters []counterGroup
}

// counterGroup is a named family of cumulative counters sharing one label
// set, distinguished by an "event" label.
type counterGroup struct {
	metric string
	labels string // pre-rendered `k="v",` fragments, sorted
	read   func() map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{recs: make(map[string]*Recorder)}
}

// Register adds (or replaces, by store name) a recorder.
func (g *Registry) Register(r *Recorder) {
	g.mu.Lock()
	g.recs[r.Store()] = r
	g.mu.Unlock()
}

// Unregister removes the recorder for the named store.
func (g *Registry) Unregister(store string) {
	g.mu.Lock()
	delete(g.recs, store)
	g.mu.Unlock()
}

// RegisterCounters adds a counter family: each key of read() becomes one
// series `metric{labels...,event="key"}`. read is called at scrape time and
// must be safe for concurrent use.
func (g *Registry) RegisterCounters(metric string, labels map[string]string, read func() map[string]int64) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var lb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&lb, "%s=%q,", k, labels[k])
	}
	g.mu.Lock()
	g.counters = append(g.counters, counterGroup{metric: metric, labels: lb.String(), read: read})
	g.mu.Unlock()
}

// Snapshots returns a point-in-time snapshot of every registered recorder,
// sorted by store name (also the expvar payload).
func (g *Registry) Snapshots() []Snapshot {
	g.mu.Lock()
	recs := make([]*Recorder, 0, len(g.recs))
	for _, r := range g.recs {
		recs = append(recs, r)
	}
	g.mu.Unlock()
	out := make([]Snapshot, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Snapshot(false))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Store < out[j].Store })
	return out
}

// WritePrometheus renders every registered source in Prometheus text
// exposition format (version 0.0.4).
func (g *Registry) WritePrometheus(w io.Writer) error {
	snaps := g.Snapshots()
	g.mu.Lock()
	counters := append([]counterGroup(nil), g.counters...)
	g.mu.Unlock()

	var sb strings.Builder
	sb.WriteString("# HELP edsc_op_total Operations recorded, by store and op.\n")
	sb.WriteString("# TYPE edsc_op_total counter\n")
	for _, s := range snaps {
		for _, o := range s.Ops {
			fmt.Fprintf(&sb, "edsc_op_total{store=%q,op=%q} %d\n", s.Store, o.Op, o.Count)
		}
	}
	sb.WriteString("# HELP edsc_op_errors_total Failed operations, by store and op.\n")
	sb.WriteString("# TYPE edsc_op_errors_total counter\n")
	for _, s := range snaps {
		for _, o := range s.Ops {
			fmt.Fprintf(&sb, "edsc_op_errors_total{store=%q,op=%q} %d\n", s.Store, o.Op, o.Errors)
		}
	}
	sb.WriteString("# HELP edsc_op_bytes_total Payload bytes observed, by store and op.\n")
	sb.WriteString("# TYPE edsc_op_bytes_total counter\n")
	for _, s := range snaps {
		for _, o := range s.Ops {
			fmt.Fprintf(&sb, "edsc_op_bytes_total{store=%q,op=%q} %d\n", s.Store, o.Op, o.Bytes)
		}
	}
	sb.WriteString("# HELP edsc_op_latency_seconds Full-history operation latency.\n")
	sb.WriteString("# TYPE edsc_op_latency_seconds histogram\n")
	for _, s := range snaps {
		for _, o := range s.Ops {
			var cum uint64
			for _, b := range o.Buckets {
				cum = b.Count
				fmt.Fprintf(&sb, "edsc_op_latency_seconds_bucket{store=%q,op=%q,le=%q} %d\n",
					s.Store, o.Op, formatSeconds(b.Le), b.Count)
			}
			fmt.Fprintf(&sb, "edsc_op_latency_seconds_bucket{store=%q,op=%q,le=\"+Inf\"} %d\n",
				s.Store, o.Op, cum)
			fmt.Fprintf(&sb, "edsc_op_latency_seconds_sum{store=%q,op=%q} %g\n",
				s.Store, o.Op, o.Mean.Seconds()*float64(o.Count))
			fmt.Fprintf(&sb, "edsc_op_latency_seconds_count{store=%q,op=%q} %d\n",
				s.Store, o.Op, o.Count)
		}
	}
	for _, c := range counters {
		fmt.Fprintf(&sb, "# TYPE %s counter\n", c.metric)
		vals := c.read()
		events := make([]string, 0, len(vals))
		for e := range vals {
			events = append(events, e)
		}
		sort.Strings(events)
		for _, e := range events {
			fmt.Fprintf(&sb, "%s{%sevent=%q} %d\n", c.metric, c.labels, e, vals[e])
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatSeconds(d time.Duration) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", d.Seconds()), "0"), ".")
}

// ServeHTTP makes the registry an http.Handler serving /metrics scrapes.
func (g *Registry) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.WritePrometheus(w)
}

// expvarOnce guards the process-wide expvar publication: expvar names are
// global, so only the first mounted registry is exported there.
var expvarOnce sync.Once

// Mount attaches the observability surface to mux: Prometheus text at
// /metrics, expvar at /debug/vars (including an "edsc_monitor" variable
// with full snapshots), and the pprof profiling handlers under
// /debug/pprof/.
func Mount(mux *http.ServeMux, g *Registry) {
	mux.Handle("/metrics", g)
	expvarOnce.Do(func() {
		expvar.Publish("edsc_monitor", expvar.Func(func() any { return g.Snapshots() }))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// MetricsServer is a standalone observability HTTP listener (see Serve).
type MetricsServer struct {
	ln   net.Listener
	http *http.Server
}

// Serve starts an HTTP server on addr exposing the Mount surface for g —
// the sidecar endpoint for servers whose primary protocol is not HTTP and
// for CLIs. Use addr "127.0.0.1:0" for an ephemeral port.
func Serve(addr string, g *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	Mount(mux, g)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{ln: ln, http: srv}, nil
}

// Addr returns the listener's "host:port".
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close stops the listener.
func (m *MetricsServer) Close() error { return m.http.Close() }
