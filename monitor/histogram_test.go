package monitor

import (
	"testing"
	"time"
)

func TestHistIndexUpperInverse(t *testing.T) {
	// Every observable value must land in a bucket whose upper bound is at
	// or above it, and within the histogram's relative resolution.
	for _, ns := range []int64{0, 1, 2, 31, 32, 33, 63, 64, 100, 1000,
		1_000_000, 123_456_789, int64(time.Hour), 1 << 40, 1<<62 - 1} {
		i := histIndex(ns)
		if i < 0 || i >= histLen {
			t.Fatalf("histIndex(%d) = %d out of range", ns, i)
		}
		up := histUpper(i)
		if up < ns {
			t.Fatalf("histUpper(histIndex(%d)) = %d < value", ns, up)
		}
		// Relative resolution: 32 sub-buckets per power of two is ~3%.
		if ns >= 64 && float64(up-ns) > 0.04*float64(ns) {
			t.Fatalf("bucket for %d too wide: upper %d (+%.1f%%)",
				ns, up, 100*float64(up-ns)/float64(ns))
		}
	}
}

func TestHistIndexMonotone(t *testing.T) {
	prev := -1
	for _, ns := range []int64{0, 1, 5, 31, 32, 40, 64, 128, 1 << 20, 1 << 40} {
		i := histIndex(ns)
		if i < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", ns, i, prev)
		}
		prev = i
	}
}

func TestHistPercentileRanks(t *testing.T) {
	h := newHist()
	// 90 fast ops at ~1ms, 10 slow at ~500ms.
	for i := 0; i < 90; i++ {
		h.record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.record(500 * time.Millisecond)
	}
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
	p50 := histPercentile(counts, total, 0.50)
	if p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	// Rank 91 (0.901*100 rounds up) falls in the slow bucket; so must p99.
	for _, q := range []float64{0.901, 0.99} {
		p := histPercentile(counts, total, q)
		if p < 480*time.Millisecond || p > 520*time.Millisecond {
			t.Fatalf("q=%v -> %v, want ~500ms", q, p)
		}
	}
}

func TestHistBucketsCumulative(t *testing.T) {
	h := newHist()
	h.record(time.Millisecond)
	h.record(time.Millisecond)
	h.record(time.Second)
	bs := histBuckets(h.snapshot())
	if len(bs) < 2 {
		t.Fatalf("buckets = %+v", bs)
	}
	var prev uint64
	for _, b := range bs {
		if b.Count < prev {
			t.Fatalf("buckets not cumulative: %+v", bs)
		}
		prev = b.Count
	}
	if bs[len(bs)-1].Count != 3 {
		t.Fatalf("last bucket count = %d, want 3", bs[len(bs)-1].Count)
	}
	if bs[0].Le < time.Millisecond || bs[0].Le > 2*time.Millisecond {
		t.Fatalf("first bucket le = %v", bs[0].Le)
	}
}

func TestHistNegativeLatencyClamped(t *testing.T) {
	h := newHist()
	h.record(-time.Second) // clock weirdness must not panic or corrupt
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 1 {
		t.Fatalf("total = %d", total)
	}
}
