package dscl

import (
	"fmt"

	"edsc/internal/pack"
	"edsc/internal/secure"
)

// Transform is a reversible value transformation applied between the
// application and the data store: compression, encryption, or any
// user-supplied pair. Transforms compose into a pipeline; Encode runs
// first-to-last on writes and Decode last-to-first on reads.
type Transform interface {
	// Name identifies the transform in error messages.
	Name() string
	Encode(value []byte) ([]byte, error)
	Decode(data []byte) ([]byte, error)
}

// --- compression ---

// CompressionOptions configure Compression.
type CompressionOptions struct {
	// Level is the gzip level (0 = default).
	Level int
	// SkipThreshold stores values raw when gzip fails to shrink them below
	// this fraction of the original (0 = library default 0.98; negative
	// disables the fallback).
	SkipThreshold float64
}

type compression struct{ c *pack.Codec }

// Compression returns a gzip Transform (§II: "compression can reduce the
// memory consumed within a data store" and the bytes on the wire).
func Compression(opts CompressionOptions) Transform {
	var pos []pack.Option
	if opts.Level != 0 {
		pos = append(pos, pack.WithLevel(opts.Level))
	}
	switch {
	case opts.SkipThreshold < 0:
		pos = append(pos, pack.WithSkipThreshold(0))
	case opts.SkipThreshold > 0:
		pos = append(pos, pack.WithSkipThreshold(opts.SkipThreshold))
	}
	return compression{c: pack.New(pos...)}
}

func (compression) Name() string                          { return "gzip" }
func (t compression) Encode(value []byte) ([]byte, error) { return t.c.Compress(value) }
func (t compression) Decode(data []byte) ([]byte, error)  { return t.c.Decompress(data) }

// --- encryption ---

type encryption struct{ c *secure.Cipher }

// Encryption returns an AES-128 Transform (encrypt-then-MAC envelope). The
// key must be exactly 16 bytes.
func Encryption(key []byte) (Transform, error) {
	c, err := secure.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return encryption{c: c}, nil
}

// EncryptionFromPassphrase derives the key from a passphrase.
func EncryptionFromPassphrase(passphrase string) Transform {
	return encryption{c: secure.NewCipherFromPassphrase(passphrase)}
}

func (encryption) Name() string                          { return "aes128" }
func (t encryption) Encode(value []byte) ([]byte, error) { return t.c.Seal(value) }
func (t encryption) Decode(data []byte) ([]byte, error)  { return t.c.Open(data) }

// KeySize is the AES key length Encryption expects.
const KeySize = secure.KeySize

// --- composition ---

// pipeline chains transforms.
type pipeline []Transform

// Chain composes transforms into one. Encode order is left to right —
// Chain(Compression(...), encryption) compresses first, then encrypts,
// which is the only useful order (ciphertext does not compress).
func Chain(ts ...Transform) Transform {
	flat := make(pipeline, 0, len(ts))
	for _, t := range ts {
		if t == nil {
			continue
		}
		if p, ok := t.(pipeline); ok {
			flat = append(flat, p...)
			continue
		}
		flat = append(flat, t)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return flat
}

func (p pipeline) Name() string {
	name := ""
	for i, t := range p {
		if i > 0 {
			name += "+"
		}
		name += t.Name()
	}
	return name
}

func (p pipeline) Encode(value []byte) ([]byte, error) {
	cur := value
	for _, t := range p {
		next, err := t.Encode(cur)
		if err != nil {
			return nil, fmt.Errorf("dscl: %s encode: %w", t.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

func (p pipeline) Decode(data []byte) ([]byte, error) {
	cur := data
	for i := len(p) - 1; i >= 0; i-- {
		next, err := p[i].Decode(cur)
		if err != nil {
			return nil, fmt.Errorf("dscl: %s decode: %w", p[i].Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// FuncTransform adapts a pair of functions into a Transform.
type FuncTransform struct {
	TransformName string
	EncodeFunc    func([]byte) ([]byte, error)
	DecodeFunc    func([]byte) ([]byte, error)
}

// Name implements Transform.
func (f FuncTransform) Name() string {
	if f.TransformName == "" {
		return "func"
	}
	return f.TransformName
}

// Encode implements Transform.
func (f FuncTransform) Encode(value []byte) ([]byte, error) { return f.EncodeFunc(value) }

// Decode implements Transform.
func (f FuncTransform) Decode(data []byte) ([]byte, error) { return f.DecodeFunc(data) }
