package dscl

import (
	"fmt"

	"edsc/internal/bufpool"
	"edsc/internal/pack"
	"edsc/internal/secure"
)

// Transform is a reversible value transformation applied between the
// application and the data store: compression, encryption, or any
// user-supplied pair. Transforms compose into a pipeline; Encode runs
// first-to-last on writes and Decode last-to-first on reads.
type Transform interface {
	// Name identifies the transform in error messages.
	Name() string
	Encode(value []byte) ([]byte, error)
	Decode(data []byte) ([]byte, error)
}

// AppendTransform is the optional append-style fast path of a Transform.
// EncodeTo and DecodeTo append their output to dst (which may be nil, and
// must not overlap the input) and return the extended slice; only the
// returned slice is valid, since appending may reallocate. The built-in
// compression and encryption transforms implement it, and Chain pipelines
// route intermediate stages through pooled scratch when they do — a
// compress+encrypt write then allocates only the final output.
type AppendTransform interface {
	Transform
	EncodeTo(dst, value []byte) ([]byte, error)
	DecodeTo(dst, data []byte) ([]byte, error)
}

// encodeTo runs one stage in append style, falling back to the allocating
// API for transforms that implement only Transform.
func encodeTo(t Transform, dst, value []byte) ([]byte, error) {
	if at, ok := t.(AppendTransform); ok {
		return at.EncodeTo(dst, value)
	}
	out, err := t.Encode(value)
	if err != nil {
		return dst, err
	}
	return append(dst, out...), nil
}

// decodeTo is encodeTo's inverse.
func decodeTo(t Transform, dst, data []byte) ([]byte, error) {
	if at, ok := t.(AppendTransform); ok {
		return at.DecodeTo(dst, data)
	}
	out, err := t.Decode(data)
	if err != nil {
		return dst, err
	}
	return append(dst, out...), nil
}

// --- compression ---

// CompressionOptions configure Compression.
type CompressionOptions struct {
	// Level is the gzip level (0 = default).
	Level int
	// SkipThreshold stores values raw when gzip fails to shrink them below
	// this fraction of the original (0 = library default 0.98; negative
	// disables the fallback).
	SkipThreshold float64
}

type compression struct{ c *pack.Codec }

// Compression returns a gzip Transform (§II: "compression can reduce the
// memory consumed within a data store" and the bytes on the wire).
func Compression(opts CompressionOptions) Transform {
	var pos []pack.Option
	if opts.Level != 0 {
		pos = append(pos, pack.WithLevel(opts.Level))
	}
	switch {
	case opts.SkipThreshold < 0:
		pos = append(pos, pack.WithSkipThreshold(0))
	case opts.SkipThreshold > 0:
		pos = append(pos, pack.WithSkipThreshold(opts.SkipThreshold))
	}
	return compression{c: pack.New(pos...)}
}

var _ AppendTransform = compression{}

func (compression) Name() string                          { return "gzip" }
func (t compression) Encode(value []byte) ([]byte, error) { return t.c.Compress(value) }
func (t compression) Decode(data []byte) ([]byte, error)  { return t.c.Decompress(data) }

// EncodeTo implements AppendTransform.
func (t compression) EncodeTo(dst, value []byte) ([]byte, error) {
	return t.c.CompressTo(dst, value)
}

// DecodeTo implements AppendTransform.
func (t compression) DecodeTo(dst, data []byte) ([]byte, error) {
	return t.c.DecompressTo(dst, data)
}

// --- encryption ---

type encryption struct{ c *secure.Cipher }

// Encryption returns an AES-128 Transform (encrypt-then-MAC envelope). The
// key must be exactly 16 bytes.
func Encryption(key []byte) (Transform, error) {
	c, err := secure.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return encryption{c: c}, nil
}

// EncryptionFromPassphrase derives the key from a passphrase.
func EncryptionFromPassphrase(passphrase string) Transform {
	return encryption{c: secure.NewCipherFromPassphrase(passphrase)}
}

var _ AppendTransform = encryption{}

func (encryption) Name() string                          { return "aes128" }
func (t encryption) Encode(value []byte) ([]byte, error) { return t.c.Seal(value) }
func (t encryption) Decode(data []byte) ([]byte, error)  { return t.c.Open(data) }

// EncodeTo implements AppendTransform.
func (t encryption) EncodeTo(dst, value []byte) ([]byte, error) {
	return t.c.SealTo(dst, value)
}

// DecodeTo implements AppendTransform.
func (t encryption) DecodeTo(dst, data []byte) ([]byte, error) {
	return t.c.OpenTo(dst, data)
}

// KeySize is the AES key length Encryption expects.
const KeySize = secure.KeySize

// --- composition ---

// pipeline chains transforms.
type pipeline []Transform

// Chain composes transforms into one. Encode order is left to right —
// Chain(Compression(...), encryption) compresses first, then encrypts,
// which is the only useful order (ciphertext does not compress).
func Chain(ts ...Transform) Transform {
	flat := make(pipeline, 0, len(ts))
	for _, t := range ts {
		if t == nil {
			continue
		}
		if p, ok := t.(pipeline); ok {
			flat = append(flat, p...)
			continue
		}
		flat = append(flat, t)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return flat
}

func (p pipeline) Name() string {
	name := ""
	for i, t := range p {
		if i > 0 {
			name += "+"
		}
		name += t.Name()
	}
	return name
}

var _ AppendTransform = pipeline(nil)

func (p pipeline) Encode(value []byte) ([]byte, error) {
	if len(p) == 0 {
		return value, nil
	}
	out, err := p.EncodeTo(nil, value)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (p pipeline) Decode(data []byte) ([]byte, error) {
	if len(p) == 0 {
		return data, nil
	}
	out, err := p.DecodeTo(nil, data)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scratchPair is the pipeline's ping-pong scratch: intermediate stage outputs
// alternate between two pooled buffers (stage i reads one and writes the
// other, so the no-overlap rule of the *To APIs holds), and only the final
// stage writes into the caller's dst.
type scratchPair struct{ a, b *bufpool.Buf }

func (s *scratchPair) at(i int, sizeHint int) *bufpool.Buf {
	tgt := &s.a
	if i%2 == 1 {
		tgt = &s.b
	}
	if *tgt == nil {
		*tgt = bufpool.Get(sizeHint)
	}
	return *tgt
}

func (s *scratchPair) release() {
	if s.a != nil {
		s.a.Release()
	}
	if s.b != nil {
		s.b.Release()
	}
}

// EncodeTo implements AppendTransform: intermediate stages chain through
// pooled scratch, so a multi-stage pipeline costs the same steady-state
// allocations as its final stage alone.
func (p pipeline) EncodeTo(dst, value []byte) ([]byte, error) {
	if len(p) == 0 {
		return append(dst, value...), nil
	}
	var scratch scratchPair
	defer scratch.release()
	cur := value
	for i, t := range p {
		if i == len(p)-1 {
			out, err := encodeTo(t, dst, cur)
			if err != nil {
				return dst, fmt.Errorf("dscl: %s encode: %w", t.Name(), err)
			}
			return out, nil
		}
		tgt := scratch.at(i, len(cur)+64)
		out, err := encodeTo(t, tgt.B[:0], cur)
		if err != nil {
			return dst, fmt.Errorf("dscl: %s encode: %w", t.Name(), err)
		}
		tgt.B = out
		cur = out
	}
	return dst, nil // unreachable: the loop returns at the final stage
}

// DecodeTo implements AppendTransform, running stages last-to-first.
func (p pipeline) DecodeTo(dst, data []byte) ([]byte, error) {
	if len(p) == 0 {
		return append(dst, data...), nil
	}
	var scratch scratchPair
	defer scratch.release()
	cur := data
	for i := len(p) - 1; i >= 0; i-- {
		if i == 0 {
			out, err := decodeTo(p[i], dst, cur)
			if err != nil {
				return dst, fmt.Errorf("dscl: %s decode: %w", p[i].Name(), err)
			}
			return out, nil
		}
		tgt := scratch.at(i, len(cur)+64)
		out, err := decodeTo(p[i], tgt.B[:0], cur)
		if err != nil {
			return dst, fmt.Errorf("dscl: %s decode: %w", p[i].Name(), err)
		}
		tgt.B = out
		cur = out
	}
	return dst, nil // unreachable: the loop returns at stage 0
}

// FuncTransform adapts a pair of functions into a Transform.
type FuncTransform struct {
	TransformName string
	EncodeFunc    func([]byte) ([]byte, error)
	DecodeFunc    func([]byte) ([]byte, error)
}

// Name implements Transform.
func (f FuncTransform) Name() string {
	if f.TransformName == "" {
		return "func"
	}
	return f.TransformName
}

// Encode implements Transform.
func (f FuncTransform) Encode(value []byte) ([]byte, error) { return f.EncodeFunc(value) }

// Decode implements Transform.
func (f FuncTransform) Decode(data []byte) ([]byte, error) { return f.DecodeFunc(data) }
