package dscl

import (
	"context"
	"sync"
	"testing"
	"time"

	"edsc/kv"
)

func negSetup(t *testing.T, ttl time.Duration) (*Client, *countingStore, func(time.Duration)) {
	t.Helper()
	store := newCountingStore()
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	cl := New(store,
		WithCache(storeCacheWithClock(clock)),
		WithNegativeCaching(ttl),
		withClock(clock))
	return cl, store, advance
}

func TestNegativeCachingAbsorbsRepeatedMisses(t *testing.T) {
	ctx := context.Background()
	cl, store, _ := negSetup(t, time.Minute)

	for i := 0; i < 5; i++ {
		if _, err := cl.Get(ctx, "ghost"); !kv.IsNotFound(err) {
			t.Fatalf("Get #%d err = %v", i, err)
		}
	}
	if got := store.gets.Load(); got != 1 {
		t.Fatalf("store gets = %d, want 1 (tombstone absorbs repeats)", got)
	}
	if cl.NegativeHits() != 4 {
		t.Fatalf("NegativeHits = %d, want 4", cl.NegativeHits())
	}
	// Contains is also answered by the tombstone.
	ok, err := cl.Contains(ctx, "ghost")
	if err != nil || ok {
		t.Fatalf("Contains = %v, %v", ok, err)
	}
	if store.gets.Load() != 1 {
		t.Fatal("Contains bypassed the tombstone")
	}
}

func TestNegativeCachingTombstoneExpires(t *testing.T) {
	ctx := context.Background()
	cl, store, advance := negSetup(t, time.Minute)
	_, _ = cl.Get(ctx, "ghost")
	advance(2 * time.Minute)
	// The key appeared on the server in the meantime.
	_ = store.Mem.Put(ctx, "ghost", []byte("now here"))
	v, err := cl.Get(ctx, "ghost")
	if err != nil || string(v) != "now here" {
		t.Fatalf("after tombstone expiry: %q, %v", v, err)
	}
}

func TestNegativeCachingClearedByWrite(t *testing.T) {
	ctx := context.Background()
	cl, _, _ := negSetup(t, time.Hour)
	if _, err := cl.Get(ctx, "k"); !kv.IsNotFound(err) {
		t.Fatal(err)
	}
	// A write through the client must immediately supersede the tombstone.
	if err := cl.Put(ctx, "k", []byte("created")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(ctx, "k")
	if err != nil || string(v) != "created" {
		t.Fatalf("after Put: %q, %v", v, err)
	}
}

func TestNegativeCachingOffByDefault(t *testing.T) {
	ctx := context.Background()
	store := newCountingStore()
	cl := New(store, WithCache(NewInProcessCache(InProcessOptions{})))
	for i := 0; i < 3; i++ {
		_, _ = cl.Get(ctx, "ghost")
	}
	if got := store.gets.Load(); got != 3 {
		t.Fatalf("store gets = %d; misses must not be cached without the option", got)
	}
	if cl.NegativeHits() != 0 {
		t.Fatal("negative hits recorded without the option")
	}
}

func TestNegativeCachingDefaultTTLFloor(t *testing.T) {
	cl := New(kv.NewMem("m"),
		WithCache(NewInProcessCache(InProcessOptions{})),
		WithNegativeCaching(-5))
	if cl.negTTL != time.Second {
		t.Fatalf("negTTL = %v, want 1s floor", cl.negTTL)
	}
}
