package dscl

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"edsc/kv"
)

// Regression tests for the latent capability-hiding bug class the middleware
// refactor fixes: before kv.Wrapper/kv.As, wrapping a store in a transform,
// cache, or tiered-cache client silently hid kv.Expiring, kv.SQL, and
// kv.CompareAndPut from callers. Each layer flavour is pinned here.

// expiringStore is a minimal kv.Expiring fake over kv.Mem.
type expiringStore struct {
	*kv.Mem
	ttls map[string]int64
}

func newExpiringStore() *expiringStore {
	return &expiringStore{Mem: kv.NewMem("exp"), ttls: map[string]int64{}}
}

func (s *expiringStore) PutTTL(ctx context.Context, key string, value []byte, ttlNanos int64) error {
	if err := s.Put(ctx, key, value); err != nil {
		return err
	}
	s.ttls[key] = ttlNanos
	return nil
}

func (s *expiringStore) TTL(ctx context.Context, key string) (int64, error) {
	if _, err := s.Get(ctx, key); err != nil {
		return 0, err
	}
	return s.ttls[key], nil
}

// sqlStore is a minimal kv.SQL fake over kv.Mem.
type sqlStore struct {
	*kv.Mem
	execs []string
}

func (s *sqlStore) Exec(ctx context.Context, query string) (int, error) {
	s.execs = append(s.execs, query)
	return 1, nil
}

func (s *sqlStore) Query(ctx context.Context, query string) (*kv.Rows, error) {
	return &kv.Rows{}, nil
}

func TestTransformClientExposesExpiring(t *testing.T) {
	ctx := context.Background()
	store := newExpiringStore()
	cl := New(store, WithTransform(EncryptionFromPassphrase("caps-test")))

	es, ok := kv.As[kv.Expiring](kv.Store(cl))
	if !ok {
		t.Fatal("kv.Expiring hidden by a transform client")
	}
	// The client must intercept — a TTL write through the transform layer
	// has to store ciphertext, not plaintext.
	if _, isClient := es.(*Client); !isClient {
		t.Fatalf("Expiring resolved to %T, want the client to intercept it", es)
	}
	if err := es.PutTTL(ctx, "k", []byte("secret"), int64(time.Minute)); err != nil {
		t.Fatal(err)
	}
	raw, err := store.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("secret")) {
		t.Fatal("PutTTL stored plaintext through an encrypting client")
	}
	if v, err := cl.Get(ctx, "k"); err != nil || string(v) != "secret" {
		t.Fatalf("Get after PutTTL = %q, %v", v, err)
	}
	if d, err := es.TTL(ctx, "k"); err != nil || d != int64(time.Minute) {
		t.Fatalf("TTL = %d, %v", d, err)
	}
}

func TestCacheClientBoundsTTLEntries(t *testing.T) {
	// A TTL write that is cached must not outlive the server-side TTL: the
	// cache entry's expiry is clamped, so once the store expires the key the
	// client revalidates instead of serving a zombie value.
	ctx := context.Background()
	store := newExpiringStore()
	cl := New(store,
		WithCache(NewInProcessCache(InProcessOptions{})),
		WithTTL(time.Hour), // client lease far longer than the server TTL
	)
	es, ok := kv.As[kv.Expiring](kv.Store(cl))
	if !ok {
		t.Fatal("kv.Expiring hidden by a cache client")
	}
	before := time.Now()
	if err := es.PutTTL(ctx, "k", []byte("v"), int64(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	e, state, err := cl.cache.Get(ctx, "k")
	if err != nil || state != Hit {
		t.Fatalf("cache after PutTTL = state %v, %v", state, err)
	}
	if left := e.ExpiresAt.Sub(before); left < 10*time.Second-time.Second || left > 11*time.Second {
		t.Fatalf("cached expiry %v from now, want clamped to the 10s server TTL, not the 1h lease", left)
	}
}

func TestClientExposesSQLPassthrough(t *testing.T) {
	ctx := context.Background()
	store := &sqlStore{Mem: kv.NewMem("sql")}
	cl := New(store,
		WithTransform(EncryptionFromPassphrase("caps-test")),
		WithCache(NewInProcessCache(InProcessOptions{})),
	)
	sq, ok := kv.As[kv.SQL](kv.Store(cl))
	if !ok {
		t.Fatal("kv.SQL hidden by a transform+cache client")
	}
	// SQL has nothing for the client to re-encode: it must fall through to
	// the native store, not be intercepted.
	if native, ok := sq.(*sqlStore); !ok || native != store {
		t.Fatalf("kv.SQL resolved to %T, want passthrough to the native store", sq)
	}
	if n, err := sq.Exec(ctx, "DELETE FROM t"); err != nil || n != 1 {
		t.Fatalf("Exec = %d, %v", n, err)
	}
	if len(store.execs) != 1 || store.execs[0] != "DELETE FROM t" {
		t.Fatalf("store saw execs %v", store.execs)
	}
}

func TestTransformClientInterceptsCAS(t *testing.T) {
	ctx := context.Background()
	store := kv.NewMem("cas")
	cl := New(store,
		WithTransform(EncryptionFromPassphrase("caps-test")),
		WithCache(NewInProcessCache(InProcessOptions{})),
	)
	cas, ok := kv.As[kv.CompareAndPut](kv.Store(cl))
	if !ok {
		t.Fatal("kv.CompareAndPut hidden by a transform client")
	}
	if _, isClient := cas.(*Client); !isClient {
		t.Fatalf("CAS resolved to %T, want the client to intercept it", cas)
	}
	v1, err := cas.PutIfVersion(ctx, "k", []byte("first"), kv.NoVersion)
	if err != nil {
		t.Fatal(err)
	}
	// Ciphertext at rest, plaintext through the client.
	raw, err := store.Get(ctx, "k")
	if err != nil || bytes.Contains(raw, []byte("first")) {
		t.Fatalf("CAS stored plaintext (raw=%q, err=%v)", raw, err)
	}
	if v, err := cl.Get(ctx, "k"); err != nil || string(v) != "first" {
		t.Fatalf("Get after CAS = %q, %v", v, err)
	}
	// The Get above cached "first"; a CAS update must invalidate it so the
	// next read cannot be served stale.
	if _, err := cas.PutIfVersion(ctx, "k", []byte("second"), v1); err != nil {
		t.Fatal(err)
	}
	if v, err := cl.Get(ctx, "k"); err != nil || string(v) != "second" {
		t.Fatalf("Get after CAS update = %q, %v (stale cache?)", v, err)
	}
	// Losing the race is reported verbatim.
	if _, err := cas.PutIfVersion(ctx, "k", []byte("third"), v1); !errors.Is(err, kv.ErrVersionMismatch) {
		t.Fatalf("stale CAS err = %v, want ErrVersionMismatch", err)
	}
}

func TestTieredCacheClientExposesCapabilities(t *testing.T) {
	ctx := context.Background()
	store := newExpiringStore()
	tiered := NewTieredCache(
		NewInProcessCache(InProcessOptions{MaxEntries: 4}),
		NewInProcessCache(InProcessOptions{}),
		0,
	)
	cl := New(store, WithCache(tiered))
	es, ok := kv.As[kv.Expiring](kv.Store(cl))
	if !ok {
		t.Fatal("kv.Expiring hidden by a tiered-cache client")
	}
	if err := es.PutTTL(ctx, "k", []byte("v"), int64(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if d, err := es.TTL(ctx, "k"); err != nil || d != int64(time.Minute) {
		t.Fatalf("TTL = %d, %v", d, err)
	}
	if _, ok := kv.As[kv.CompareAndPut](kv.Store(cl)); !ok {
		t.Fatal("kv.CompareAndPut hidden by a tiered-cache client")
	}
}

func TestVersionedInterceptionDecodes(t *testing.T) {
	ctx := context.Background()
	store := &versionedStore{newCountingStore()}
	cl := New(store, WithTransform(EncryptionFromPassphrase("caps-test")),
		WithCache(NewInProcessCache(InProcessOptions{})))

	vs, ok := kv.As[kv.Versioned](kv.Store(cl))
	if !ok {
		t.Fatal("kv.Versioned hidden by a transform client")
	}
	if _, isClient := vs.(*Client); !isClient {
		t.Fatalf("Versioned resolved to %T, want the client to intercept it", vs)
	}
	ver, err := vs.PutVersioned(ctx, "k", []byte("plain"))
	if err != nil || ver == kv.NoVersion {
		t.Fatalf("PutVersioned = %q, %v", ver, err)
	}
	got, gotVer, err := vs.GetVersioned(ctx, "k")
	if err != nil || string(got) != "plain" || gotVer != ver {
		t.Fatalf("GetVersioned = %q, %q, %v; want decoded value at %q", got, gotVer, err, ver)
	}
	// Unmodified conditional fetch passes through without a decode.
	if _, v, modified, err := vs.GetIfModified(ctx, "k", ver); err != nil || modified || v != ver {
		t.Fatalf("GetIfModified(current) = %q, %v, %v", v, modified, err)
	}
	// Modified conditional fetch decodes.
	if data, _, modified, err := vs.GetIfModified(ctx, "k", kv.Version("bogus")); err != nil || !modified || string(data) != "plain" {
		t.Fatalf("GetIfModified(stale) = %q, %v, %v", data, modified, err)
	}
}

func TestDeltaClientSealsCapabilities(t *testing.T) {
	store := &versionedStore{newCountingStore()}
	cl := New(store, WithDeltaEncoding(0, 4))

	// The chain owns the physical layout: nothing below the client may be
	// reached, and the client itself supports none of the capabilities.
	if w := cl.Unwrap(); w != nil {
		t.Fatalf("delta client Unwrap = %T, want nil", w)
	}
	for name, found := range map[string]bool{
		"Versioned":     func() bool { _, ok := kv.As[kv.Versioned](kv.Store(cl)); return ok }(),
		"Expiring":      func() bool { _, ok := kv.As[kv.Expiring](kv.Store(cl)); return ok }(),
		"CompareAndPut": func() bool { _, ok := kv.As[kv.CompareAndPut](kv.Store(cl)); return ok }(),
		"SQL":           func() bool { _, ok := kv.As[kv.SQL](kv.Store(cl)); return ok }(),
	} {
		if found {
			t.Errorf("kv.%s reachable through a delta-encoded client", name)
		}
	}
	// The data path itself still works.
	ctx := context.Background()
	if err := cl.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := cl.Get(ctx, "k"); err != nil || string(v) != "v" {
		t.Fatalf("delta Get = %q, %v", v, err)
	}
}
