package dscl

import (
	"context"
	"sync"
	"testing"
	"time"

	"edsc/kv"
)

// swrSetup builds a client with SWR over a counting store with a shared
// fake clock driving both the client and its cache.
func swrSetup(t *testing.T) (*Client, *countingStore, func(time.Duration)) {
	t.Helper()
	store := newCountingStore()
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	cl := New(store,
		WithCache(storeCacheWithClock(clock)),
		WithTTL(time.Minute),
		WithStaleWhileRevalidate(),
		withClock(clock))
	return cl, store, advance
}

func TestSWRServesStaleImmediately(t *testing.T) {
	ctx := context.Background()
	cl, store, advance := swrSetup(t)

	if err := cl.Put(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Minute) // entry is now stale

	// Another writer updates the store directly.
	_ = store.Mem.Put(ctx, "k", []byte("v2"))

	// First read after expiry: stale value, no blocking on the store.
	v, err := cl.Get(ctx, "k")
	if err != nil || string(v) != "v1" {
		t.Fatalf("stale read = %q, %v", v, err)
	}
	if cl.Refreshes() != 1 {
		t.Fatalf("Refreshes = %d", cl.Refreshes())
	}
	cl.WaitRefreshes()

	// After the background refresh, the fresh value is cached.
	v, err = cl.Get(ctx, "k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("post-refresh read = %q, %v", v, err)
	}
}

func TestSWRDedupesRefreshes(t *testing.T) {
	ctx := context.Background()
	cl, store, advance := swrSetup(t)
	_ = cl.Put(ctx, "k", []byte("v"))
	advance(2 * time.Minute)

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.Get(ctx, "k"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	cl.WaitRefreshes()
	// All ten reads were stale hits; at most a couple of refreshes ran
	// (one per expiry window, not one per reader).
	if got := cl.Refreshes(); got > 2 {
		t.Fatalf("Refreshes = %d for 10 concurrent stale reads", got)
	}
	if store.gets.Load() > 2 {
		t.Fatalf("store gets = %d", store.gets.Load())
	}
}

func TestSWRDeletedKeyEventuallyDropped(t *testing.T) {
	ctx := context.Background()
	cl, store, advance := swrSetup(t)
	_ = cl.Put(ctx, "k", []byte("v"))
	_ = store.Mem.Delete(ctx, "k") // removed behind the client's back
	advance(2 * time.Minute)

	// Stale read still succeeds once (bounded staleness)...
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	cl.WaitRefreshes()
	// ...but the refresh discovered the deletion and dropped the entry.
	if _, err := cl.Get(ctx, "k"); !kv.IsNotFound(err) {
		t.Fatalf("err = %v, want ErrNotFound after refresh", err)
	}
}

func TestSWRWithVersionedStoreUsesRevalidation(t *testing.T) {
	ctx := context.Background()
	store := &versionedStore{newCountingStore()}
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	cl := New(store,
		WithCache(storeCacheWithClock(clock)),
		WithTTL(time.Minute),
		WithStaleWhileRevalidate(),
		withClock(clock))

	_ = cl.Put(ctx, "k", []byte("stable"))
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()

	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	cl.WaitRefreshes()
	st := cl.Stats()
	if st.Revalidations != 1 || st.RevalidatedFresh != 1 {
		t.Fatalf("stats = %+v (background refresh should revalidate, not refetch)", st)
	}
	if store.gets.Load() != 0 {
		t.Fatal("full fetch issued despite unchanged version")
	}
	// Lease renewed: next read is a plain hit.
	before := cl.Stats().CacheHits
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if cl.Stats().CacheHits != before+1 {
		t.Fatal("lease not renewed by background revalidation")
	}
}

func TestSWRDisabledFallsBackToSyncPath(t *testing.T) {
	// Without the option, stale reads block on the synchronous path.
	ctx := context.Background()
	store := newCountingStore()
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	cl := New(store,
		WithCache(storeCacheWithClock(clock)),
		WithTTL(time.Minute),
		withClock(clock))
	_ = cl.Put(ctx, "k", []byte("v1"))
	_ = store.Mem.Put(ctx, "k", []byte("v2"))
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	v, err := cl.Get(ctx, "k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("sync stale read = %q, %v (must fetch fresh)", v, err)
	}
	if cl.Refreshes() != 0 {
		t.Fatal("background refresh ran without the option")
	}
}
