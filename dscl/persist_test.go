package dscl

import (
	"context"
	"fmt"
	"testing"
	"time"

	"edsc/kv"
)

func TestSaveToLoadFromWarmStart(t *testing.T) {
	ctx := context.Background()
	hot := NewInProcessCache(InProcessOptions{})
	for i := 0; i < 50; i++ {
		_ = hot.Put(ctx, fmt.Sprintf("k%d", i), Entry{
			Value:   []byte(fmt.Sprintf("v%d", i)),
			Version: kv.Version(fmt.Sprintf("etag%d", i)),
		})
	}
	durable := kv.NewMem("snapshots")
	n, err := hot.SaveTo(ctx, durable)
	if err != nil || n != 50 {
		t.Fatalf("SaveTo = %d, %v", n, err)
	}

	// "Restart": a fresh cache warms from the durable store.
	warm := NewInProcessCache(InProcessOptions{})
	n, err = warm.LoadFrom(ctx, durable)
	if err != nil || n != 50 {
		t.Fatalf("LoadFrom = %d, %v", n, err)
	}
	e, state, _ := warm.Get(ctx, "k7")
	if state != Hit || string(e.Value) != "v7" || e.Version != "etag7" {
		t.Fatalf("warm entry = %+v, %v", e, state)
	}
}

func TestSaveToPreservesExpiry(t *testing.T) {
	ctx := context.Background()
	hot := NewInProcessCache(InProcessOptions{})
	past := time.Now().Add(-time.Minute)
	future := time.Now().Add(time.Hour)
	_ = hot.Put(ctx, "expired", Entry{Value: []byte("old"), Version: "v1", ExpiresAt: past})
	_ = hot.Put(ctx, "fresh", Entry{Value: []byte("new"), ExpiresAt: future})

	durable := kv.NewMem("snap")
	if _, err := hot.SaveTo(ctx, durable); err != nil {
		t.Fatal(err)
	}
	warm := NewInProcessCache(InProcessOptions{})
	if _, err := warm.LoadFrom(ctx, durable); err != nil {
		t.Fatal(err)
	}
	// The expired entry survives the restart as a revalidation candidate.
	e, state, _ := warm.Get(ctx, "expired")
	if state != Stale || string(e.Value) != "old" {
		t.Fatalf("expired entry = %+v, %v; want Stale with value", e, state)
	}
	if _, state, _ := warm.Get(ctx, "fresh"); state != Hit {
		t.Fatalf("fresh entry state = %v", state)
	}
}

func TestLoadFromSkipsForeignValues(t *testing.T) {
	ctx := context.Background()
	durable := kv.NewMem("mixed")
	_ = durable.Put(ctx, "junk", []byte("not an envelope"))
	hot := NewInProcessCache(InProcessOptions{})
	_ = hot.Put(ctx, "good", Entry{Value: []byte("v")})
	if _, err := hot.SaveTo(ctx, durable); err != nil {
		t.Fatal(err)
	}

	warm := NewInProcessCache(InProcessOptions{})
	n, err := warm.LoadFrom(ctx, durable)
	if err != nil || n != 1 {
		t.Fatalf("LoadFrom = %d, %v; want 1 (junk skipped)", n, err)
	}
}

func TestSavedCacheReadableAsStoreCache(t *testing.T) {
	// SaveTo uses the StoreCache envelope, so a saved snapshot can serve as
	// a remote cache directly.
	ctx := context.Background()
	hot := NewInProcessCache(InProcessOptions{})
	_ = hot.Put(ctx, "k", Entry{Value: []byte("shared"), Version: "e1"})
	durable := kv.NewMem("snap")
	if _, err := hot.SaveTo(ctx, durable); err != nil {
		t.Fatal(err)
	}
	sc := NewStoreCache(durable)
	e, state, err := sc.Get(ctx, "k")
	if err != nil || state != Hit || string(e.Value) != "shared" || e.Version != "e1" {
		t.Fatalf("StoreCache view = %+v, %v, %v", e, state, err)
	}
}

func TestSaveToFailurePropagates(t *testing.T) {
	ctx := context.Background()
	hot := NewInProcessCache(InProcessOptions{})
	_ = hot.Put(ctx, "k", Entry{Value: []byte("v")})
	dead := kv.NewMem("dead")
	_ = dead.Close()
	if _, err := hot.SaveTo(ctx, dead); err == nil {
		t.Fatal("SaveTo to closed store succeeded")
	}
	if _, err := hot.LoadFrom(ctx, dead); err == nil {
		t.Fatal("LoadFrom closed store succeeded")
	}
}

func TestRangeVisitsAll(t *testing.T) {
	ctx := context.Background()
	c := NewInProcessCache(InProcessOptions{})
	for i := 0; i < 20; i++ {
		_ = c.Put(ctx, fmt.Sprintf("k%d", i), Entry{Value: []byte{byte(i)}})
	}
	durable := kv.NewMem("all")
	n, _ := c.SaveTo(ctx, durable)
	if cnt, _ := durable.Len(ctx); n != 20 || cnt != 20 {
		t.Fatalf("saved %d, store has %d", n, cnt)
	}
}
