package dscl

import (
	"context"
	"time"

	"edsc/kv"
)

// TieredCache composes two caches in the classic L1/L2 arrangement §III's
// discussion implies: a fast private in-process cache in front of a larger
// remote-process cache shared by many clients. Reads probe L1 first and
// promote L2 hits into L1; writes, touches, and invalidations go to both.
//
// L1 hits cost nanoseconds; L1 misses that hit L2 cost one cache-server
// round trip instead of a full data store fetch — each tier absorbs what
// the one above it misses.
type TieredCache struct {
	l1 Cache
	l2 Cache
	// promoteTTL bounds how long a promoted entry may live in L1 before
	// re-consulting L2 (0 = keep the entry's own expiry).
	promoteTTL time.Duration
}

var _ Cache = (*TieredCache)(nil)

// NewTieredCache builds a tiered cache. promoteTTL, when positive, caps the
// L1 lifetime of entries promoted from L2, so invalidations performed
// directly against the shared L2 are observed within that window even
// without an invalidation hub.
func NewTieredCache(l1, l2 Cache, promoteTTL time.Duration) *TieredCache {
	return &TieredCache{l1: l1, l2: l2, promoteTTL: promoteTTL}
}

// Get implements Cache.
func (t *TieredCache) Get(ctx context.Context, key string) (Entry, State, error) {
	if e, state, err := t.l1.Get(ctx, key); err == nil && state != Miss {
		return e, state, nil
	}
	e, state, err := t.l2.Get(ctx, key)
	if err != nil || state == Miss {
		return e, state, err
	}
	// Promote the L2 hit (or revalidation candidate) into L1.
	promoted := e
	if t.promoteTTL > 0 {
		bound := time.Now().Add(t.promoteTTL)
		if promoted.ExpiresAt.IsZero() || promoted.ExpiresAt.After(bound) {
			promoted.ExpiresAt = bound
		}
	}
	_ = t.l1.Put(ctx, key, promoted)
	return e, state, nil
}

// Put implements Cache: write-through to both tiers.
func (t *TieredCache) Put(ctx context.Context, key string, e Entry) error {
	if err := t.l1.Put(ctx, key, e); err != nil {
		return err
	}
	return t.l2.Put(ctx, key, e)
}

// Delete implements Cache: both tiers.
func (t *TieredCache) Delete(ctx context.Context, key string) (bool, error) {
	d1, err1 := t.l1.Delete(ctx, key)
	d2, err2 := t.l2.Delete(ctx, key)
	if err1 != nil {
		return d1 || d2, err1
	}
	return d1 || d2, err2
}

// Touch implements Cache: both tiers (missing in one tier is fine).
func (t *TieredCache) Touch(ctx context.Context, key string, expiresAt time.Time, version kv.Version) (bool, error) {
	t1, err1 := t.l1.Touch(ctx, key, expiresAt, version)
	t2, err2 := t.l2.Touch(ctx, key, expiresAt, version)
	if err1 != nil {
		return t1 || t2, err1
	}
	return t1 || t2, err2
}

// Len implements Cache: the shared tier's count (L1 holds a subset).
func (t *TieredCache) Len(ctx context.Context) (int, error) { return t.l2.Len(ctx) }

// Clear implements Cache: both tiers.
func (t *TieredCache) Clear(ctx context.Context) error {
	if err := t.l1.Clear(ctx); err != nil {
		return err
	}
	return t.l2.Clear(ctx)
}
