package dscl

import (
	"context"
	"time"

	"edsc/kv"
)

// Negative caching: repeated lookups of keys that do not exist ("cache
// penetration") hit the data store every time, since there is nothing to
// cache. With WithNegativeCaching enabled, a store miss installs a
// tombstone entry for the key; until its TTL lapses, further Gets answer
// ErrNotFound from the cache. Any Put or Delete for the key replaces or
// drops the tombstone, so writes are visible immediately.

// negativeVersion marks tombstone entries. The NUL prefix cannot collide
// with real version tags (ETags and engine versions are printable).
const negativeVersion kv.Version = "\x00edsc-negative"

// isNegative reports whether e is a tombstone.
func isNegative(e Entry) bool { return e.Version == negativeVersion }

// WithNegativeCaching caches "key not found" results for ttl, bounding how
// often absent keys reach the store. Requires WithCache.
func WithNegativeCaching(ttl time.Duration) Option {
	return func(cl *Client) {
		if ttl <= 0 {
			ttl = time.Second
		}
		cl.negTTL = ttl
	}
}

// NegativeHits reports how many Gets were answered ErrNotFound by a cached
// tombstone instead of a store round trip.
func (cl *Client) NegativeHits() int64 { return cl.negHits.Load() }

// cacheNegative installs a tombstone after a store miss.
func (cl *Client) cacheNegative(ctx context.Context, key string) {
	if cl.cache == nil || cl.negTTL <= 0 {
		return
	}
	e := Entry{Version: negativeVersion, ExpiresAt: cl.clock().Add(cl.negTTL)}
	if err := cl.cache.Put(ctx, key, e); err != nil {
		cl.cacheErrs.Add(1)
	}
}
