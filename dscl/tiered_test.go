package dscl

import (
	"context"
	"testing"
	"time"

	"edsc/kv"
)

func newTiered(t *testing.T) (*TieredCache, *InProcessCache, *StoreCache, *kv.Mem) {
	t.Helper()
	l2Backing := kv.NewMem("l2")
	l1 := NewInProcessCache(InProcessOptions{})
	l2 := NewStoreCache(l2Backing)
	return NewTieredCache(l1, l2, 0), l1, l2, l2Backing
}

func TestTieredPutPopulatesBothTiers(t *testing.T) {
	ctx := context.Background()
	tc, l1, l2, _ := newTiered(t)
	if err := tc.Put(ctx, "k", Entry{Value: []byte("v"), Version: "e1"}); err != nil {
		t.Fatal(err)
	}
	if _, state, _ := l1.Get(ctx, "k"); state != Hit {
		t.Fatal("L1 missing after Put")
	}
	if _, state, _ := l2.Get(ctx, "k"); state != Hit {
		t.Fatal("L2 missing after Put")
	}
	e, state, err := tc.Get(ctx, "k")
	if err != nil || state != Hit || string(e.Value) != "v" {
		t.Fatalf("tiered Get = %+v, %v, %v", e, state, err)
	}
}

func TestTieredPromotionFromL2(t *testing.T) {
	ctx := context.Background()
	tc, l1, l2, _ := newTiered(t)
	// Entry exists only in the shared L2 (put there by another client).
	if err := l2.Put(ctx, "shared", Entry{Value: []byte("from-l2"), Version: "e9"}); err != nil {
		t.Fatal(err)
	}
	if _, state, _ := l1.Get(ctx, "shared"); state != Miss {
		t.Fatal("L1 unexpectedly warm")
	}
	e, state, err := tc.Get(ctx, "shared")
	if err != nil || state != Hit || string(e.Value) != "from-l2" {
		t.Fatalf("tiered Get = %v, %v", state, err)
	}
	// Promoted: now in L1 with its version intact.
	pe, state, _ := l1.Get(ctx, "shared")
	if state != Hit || pe.Version != "e9" {
		t.Fatalf("promotion failed: %v, %+v", state, pe)
	}
}

func TestTieredPromoteTTLCapsL1Lifetime(t *testing.T) {
	ctx := context.Background()
	l1 := NewInProcessCache(InProcessOptions{})
	l2 := NewStoreCache(kv.NewMem("l2"))
	tc := NewTieredCache(l1, l2, 50*time.Millisecond)

	_ = l2.Put(ctx, "k", Entry{Value: []byte("v")}) // no expiry in L2
	if _, state, _ := tc.Get(ctx, "k"); state != Hit {
		t.Fatal("miss")
	}
	// L1 copy carries the promote cap; the L2 copy does not.
	e, _, _ := l1.Get(ctx, "k")
	if e.ExpiresAt.IsZero() || time.Until(e.ExpiresAt) > 60*time.Millisecond {
		t.Fatalf("promote TTL not applied: %v", e.ExpiresAt)
	}
	e2, _, _ := l2.Get(ctx, "k")
	if !e2.ExpiresAt.IsZero() {
		t.Fatal("promote TTL leaked into L2")
	}
}

func TestTieredDeleteAndClear(t *testing.T) {
	ctx := context.Background()
	tc, l1, l2, _ := newTiered(t)
	_ = tc.Put(ctx, "k", Entry{Value: []byte("v")})
	ok, err := tc.Delete(ctx, "k")
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, state, _ := l1.Get(ctx, "k"); state != Miss {
		t.Fatal("L1 retained deleted key")
	}
	if _, state, _ := l2.Get(ctx, "k"); state != Miss {
		t.Fatal("L2 retained deleted key")
	}
	_ = tc.Put(ctx, "a", Entry{Value: []byte("1")})
	_ = tc.Put(ctx, "b", Entry{Value: []byte("2")})
	if err := tc.Clear(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := tc.Len(ctx); n != 0 {
		t.Fatalf("Len after Clear = %d", n)
	}
}

func TestTieredTouchRenewsBothTiers(t *testing.T) {
	ctx := context.Background()
	tc, l1, l2, _ := newTiered(t)
	past := time.Now().Add(-time.Second)
	_ = tc.Put(ctx, "k", Entry{Value: []byte("v"), Version: "v1", ExpiresAt: past})
	ok, err := tc.Touch(ctx, "k", time.Now().Add(time.Hour), "v2")
	if err != nil || !ok {
		t.Fatalf("Touch = %v, %v", ok, err)
	}
	if e, state, _ := l1.Get(ctx, "k"); state != Hit || e.Version != "v2" {
		t.Fatalf("L1 after Touch: %v, %+v", state, e)
	}
	if e, state, _ := l2.Get(ctx, "k"); state != Hit || e.Version != "v2" {
		t.Fatalf("L2 after Touch: %v, %+v", state, e)
	}
}

func TestTieredL2FailureSurfacesButL1Works(t *testing.T) {
	ctx := context.Background()
	l2Backing := kv.NewMem("l2")
	l1 := NewInProcessCache(InProcessOptions{})
	tc := NewTieredCache(l1, NewStoreCache(l2Backing), 0)
	_ = tc.Put(ctx, "k", Entry{Value: []byte("v")})
	_ = l2Backing.Close()
	// L1 still answers.
	if _, state, err := tc.Get(ctx, "k"); state != Hit || err != nil {
		t.Fatalf("L1 should still serve: %v, %v", state, err)
	}
	// For an L1-miss the L2 error propagates.
	if _, _, err := tc.Get(ctx, "only-in-l2"); err == nil {
		t.Fatal("dead L2 error swallowed")
	}
	// Writes fail loudly (L2 is down).
	if err := tc.Put(ctx, "new", Entry{Value: []byte("x")}); err == nil {
		t.Fatal("Put with dead L2 succeeded")
	}
}

func TestTieredWithClientEndToEnd(t *testing.T) {
	// Full deployment: client → L1 in-process → L2 shared store cache →
	// backing store. A second client with its own L1 sees writes through
	// the shared L2.
	ctx := context.Background()
	backing := kv.NewMem("store")
	sharedL2 := kv.NewMem("l2backing")
	newClient := func() *Client {
		return New(backing, WithCache(NewTieredCache(
			NewInProcessCache(InProcessOptions{}),
			NewStoreCache(sharedL2), 0)))
	}
	a := newClient()
	b := newClient()
	if err := a.Put(ctx, "k", []byte("shared")); err != nil {
		t.Fatal(err)
	}
	// b's L1 is cold, but the shared L2 answers without touching backing.
	_ = backing.Close()
	v, err := b.Get(ctx, "k")
	if err != nil || string(v) != "shared" {
		t.Fatalf("b Get = %q, %v", v, err)
	}
	if b.Stats().CacheHits != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}
