package dscl

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edsc/kv"
	"edsc/kv/kvtest"
)

// countingStore wraps Mem and counts operations, optionally supporting
// versions.
type countingStore struct {
	*kv.Mem
	gets, puts, conditional atomic.Int64

	mu       sync.Mutex
	versions map[string]int
}

func newCountingStore() *countingStore {
	return &countingStore{Mem: kv.NewMem("counting"), versions: map[string]int{}}
}

func (s *countingStore) Get(ctx context.Context, key string) ([]byte, error) {
	s.gets.Add(1)
	return s.Mem.Get(ctx, key)
}

func (s *countingStore) Put(ctx context.Context, key string, value []byte) error {
	s.puts.Add(1)
	s.mu.Lock()
	s.versions[key]++
	s.mu.Unlock()
	return s.Mem.Put(ctx, key, value)
}

func (s *countingStore) version(key string) kv.Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return kv.Version(strings.Repeat("v", s.versions[key]+1))
}

// versionedStore adds kv.Versioned to countingStore.
type versionedStore struct{ *countingStore }

func (s *versionedStore) GetVersioned(ctx context.Context, key string) ([]byte, kv.Version, error) {
	v, err := s.Get(ctx, key)
	if err != nil {
		return nil, kv.NoVersion, err
	}
	return v, s.version(key), nil
}

func (s *versionedStore) GetIfModified(ctx context.Context, key string, since kv.Version) ([]byte, kv.Version, bool, error) {
	s.conditional.Add(1)
	cur := s.version(key)
	if _, err := s.Mem.Get(ctx, key); err != nil {
		return nil, kv.NoVersion, false, err
	}
	if since == cur {
		return nil, cur, false, nil
	}
	v, err := s.Get(ctx, key)
	if err != nil {
		return nil, kv.NoVersion, false, err
	}
	return v, cur, true, nil
}

func (s *versionedStore) PutVersioned(ctx context.Context, key string, value []byte) (kv.Version, error) {
	if err := s.Put(ctx, key, value); err != nil {
		return kv.NoVersion, err
	}
	return s.version(key), nil
}

func TestClientConformance(t *testing.T) {
	// The enhanced client is itself a kv.Store; with a copying cache it
	// satisfies the full contract.
	t.Run("cached", func(t *testing.T) {
		kvtest.Run(t, func(t *testing.T) (kv.Store, func()) {
			return New(kv.NewMem("base"),
				WithCache(NewInProcessCache(InProcessOptions{CopyOnCache: true}))), nil
		}, kvtest.Options{})
	})
	t.Run("transforms", func(t *testing.T) {
		kvtest.Run(t, func(t *testing.T) (kv.Store, func()) {
			return New(kv.NewMem("base"),
				WithCompression(CompressionOptions{}),
				WithEncryption(bytes.Repeat([]byte{7}, KeySize))), nil
		}, kvtest.Options{})
	})
}

func TestReadThroughCaching(t *testing.T) {
	ctx := context.Background()
	store := newCountingStore()
	cl := New(store, WithCache(NewInProcessCache(InProcessOptions{})))

	_ = store.Put(ctx, "k", []byte("v")) // seed behind the client's back
	store.puts.Store(0)

	for i := 0; i < 5; i++ {
		v, err := cl.Get(ctx, "k")
		if err != nil || string(v) != "v" {
			t.Fatalf("Get #%d = %q, %v", i, v, err)
		}
	}
	if got := store.gets.Load(); got != 1 {
		t.Fatalf("store gets = %d, want 1 (read-through cache)", got)
	}
	st := cl.Stats()
	if st.CacheHits != 4 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteThroughServesFromCache(t *testing.T) {
	ctx := context.Background()
	store := newCountingStore()
	cl := New(store, WithCache(NewInProcessCache(InProcessOptions{})))
	if err := cl.Put(ctx, "k", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(ctx, "k")
	if err != nil || string(v) != "fresh" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if store.gets.Load() != 0 {
		t.Fatal("write-through value not served from cache")
	}
}

func TestWriteThroughCopiesCallerSlice(t *testing.T) {
	ctx := context.Background()
	cl := New(kv.NewMem("m"), WithCache(NewInProcessCache(InProcessOptions{})))
	buf := []byte("abc")
	_ = cl.Put(ctx, "k", buf)
	buf[0] = 'Z'
	v, _ := cl.Get(ctx, "k")
	if string(v) != "abc" {
		t.Fatalf("cache aliased Put slice: %q", v)
	}
}

func TestWriteInvalidate(t *testing.T) {
	ctx := context.Background()
	store := newCountingStore()
	cl := New(store,
		WithCache(NewInProcessCache(InProcessOptions{})),
		WithWritePolicy(WriteInvalidate))
	_ = cl.Put(ctx, "k", []byte("v1"))
	if _, err := cl.Get(ctx, "k"); err != nil { // miss: fetches and caches
		t.Fatal(err)
	}
	_ = cl.Put(ctx, "k", []byte("v2")) // invalidates
	v, err := cl.Get(ctx, "k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if store.gets.Load() != 2 {
		t.Fatalf("store gets = %d, want 2 (invalidate forces refetch)", store.gets.Load())
	}
}

func TestWriteAround(t *testing.T) {
	ctx := context.Background()
	store := newCountingStore()
	cl := New(store,
		WithCache(NewInProcessCache(InProcessOptions{})),
		WithWritePolicy(WriteAround))
	// Cache an old value, then write around it: the stale cached value
	// remains (the documented hazard of WriteAround).
	_ = store.Put(ctx, "k", []byte("old"))
	_, _ = cl.Get(ctx, "k")
	_ = cl.Put(ctx, "k", []byte("new"))
	v, _ := cl.Get(ctx, "k")
	if string(v) != "old" {
		t.Fatalf("WriteAround unexpectedly touched the cache: %q", v)
	}
}

func TestDeleteInvalidatesCache(t *testing.T) {
	ctx := context.Background()
	cl := New(kv.NewMem("m"), WithCache(NewInProcessCache(InProcessOptions{})))
	_ = cl.Put(ctx, "k", []byte("v"))
	if err := cl.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, "k"); !kv.IsNotFound(err) {
		t.Fatalf("Get after Delete err = %v (cache must not resurrect)", err)
	}
}

func TestExpiredEntryRefetchedWithoutVersions(t *testing.T) {
	ctx := context.Background()
	store := newCountingStore()
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	// The cache must share the clock so expiry is observable.
	cl := New(store,
		WithCache(storeCacheWithClock(clock)),
		WithTTL(time.Minute),
		withClock(clock))
	_ = cl.Put(ctx, "k", []byte("v"))
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if store.gets.Load() != 0 {
		t.Fatal("expected cache hit before expiry")
	}
	advance(2 * time.Minute)
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if store.gets.Load() != 1 {
		t.Fatalf("store gets = %d, want 1 (expired entry refetched)", store.gets.Load())
	}
	if cl.Stats().StaleHits != 1 {
		t.Fatalf("stats = %+v", cl.Stats())
	}
}

// storeCacheWithClock builds a StoreCache with a custom clock.
func storeCacheWithClock(clock func() time.Time) Cache {
	c := NewStoreCache(kv.NewMem("cache"))
	c.clock = clock
	return c
}

func TestRevalidationNotModified(t *testing.T) {
	ctx := context.Background()
	store := &versionedStore{newCountingStore()}
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	cl := New(store,
		WithCache(storeCacheWithClock(clock)),
		WithTTL(time.Minute),
		withClock(clock))
	_ = cl.Put(ctx, "k", []byte("stable"))
	advance(2 * time.Minute) // entry expires

	v, err := cl.Get(ctx, "k")
	if err != nil || string(v) != "stable" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	st := cl.Stats()
	if st.Revalidations != 1 || st.RevalidatedFresh != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if store.gets.Load() != 0 {
		t.Fatal("revalidation transferred the full object")
	}

	// The lease was renewed: the next read is a plain hit.
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if got := cl.Stats().CacheHits; got != 1 {
		t.Fatalf("hits after touch = %d, want 1", got)
	}
}

func TestRevalidationModified(t *testing.T) {
	ctx := context.Background()
	store := &versionedStore{newCountingStore()}
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	cl := New(store,
		WithCache(storeCacheWithClock(clock)),
		WithTTL(time.Minute),
		withClock(clock))
	_ = cl.Put(ctx, "k", []byte("v1"))
	// Another client updates the store directly.
	if _, err := store.PutVersioned(ctx, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Minute)

	v, err := cl.Get(ctx, "k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("Get = %q, %v (stale value served)", v, err)
	}
	st := cl.Stats()
	if st.Revalidations != 1 || st.RevalidatedFresh != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRevalidationDisabledFallsBackToFetch(t *testing.T) {
	ctx := context.Background()
	store := &versionedStore{newCountingStore()}
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	cl := New(store,
		WithCache(storeCacheWithClock(clock)),
		WithTTL(time.Minute),
		WithRevalidation(false),
		withClock(clock))
	_ = cl.Put(ctx, "k", []byte("v"))
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if store.conditional.Load() != 0 {
		t.Fatal("conditional fetch issued with revalidation disabled")
	}
	if store.gets.Load() != 1 {
		t.Fatalf("gets = %d, want full refetch", store.gets.Load())
	}
}

func TestDeletedKeyDropsStaleCacheEntry(t *testing.T) {
	ctx := context.Background()
	store := newCountingStore()
	cl := New(store, WithCache(NewInProcessCache(InProcessOptions{})))
	_ = cl.Put(ctx, "k", []byte("v"))
	_ = store.Mem.Delete(ctx, "k") // deleted behind the client's back
	// Cached value still serves (cache coherence is TTL-based)...
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	// ...but once the cache is cleared and the store says gone, Get must
	// report not-found and not resurrect.
	_ = cl.Cache().Clear(ctx)
	if _, err := cl.Get(ctx, "k"); !kv.IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestTransformsEncryptAtRest(t *testing.T) {
	ctx := context.Background()
	store := kv.NewMem("m")
	key := bytes.Repeat([]byte{9}, KeySize)
	cl := New(store, WithCompression(CompressionOptions{}), WithEncryption(key))
	plaintext := bytes.Repeat([]byte("confidential "), 100)
	if err := cl.Put(ctx, "doc", plaintext); err != nil {
		t.Fatal(err)
	}
	// At rest the store holds ciphertext.
	raw, _ := store.Get(ctx, "doc")
	if bytes.Contains(raw, []byte("confidential")) {
		t.Fatal("plaintext stored at rest")
	}
	got, err := cl.Get(ctx, "doc")
	if err != nil || !bytes.Equal(got, plaintext) {
		t.Fatal("decrypt round trip failed")
	}
	st := cl.Stats()
	if st.TransformInBytes == 0 || st.TransformOutBytes == 0 {
		t.Fatalf("transform accounting = %+v", st)
	}
	// Compression ran before encryption, so stored bytes are smaller.
	if st.TransformOutBytes >= st.TransformInBytes {
		t.Fatalf("no net compression: %d -> %d", st.TransformInBytes, st.TransformOutBytes)
	}
}

func TestCacheTransformedKeepsCiphertextInCache(t *testing.T) {
	ctx := context.Background()
	store := kv.NewMem("m")
	cacheStore := kv.NewMem("cache")
	cl := New(store,
		WithEncryption(bytes.Repeat([]byte{1}, KeySize)),
		WithCache(NewStoreCache(cacheStore)),
		WithCacheTransformed())
	secret := []byte("the cache must not hold this in the clear")
	_ = cl.Put(ctx, "k", secret)
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	raw, err := cacheStore.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) {
		t.Fatal("cache holds plaintext despite WithCacheTransformed")
	}
	// And hits still decrypt correctly.
	v, err := cl.Get(ctx, "k")
	if err != nil || !bytes.Equal(v, secret) {
		t.Fatalf("hit decode failed: %q, %v", v, err)
	}
	if cl.Stats().CacheHits == 0 {
		t.Fatal("no cache hit recorded")
	}
}

func TestDeltaEncodingClient(t *testing.T) {
	ctx := context.Background()
	store := newCountingStore()
	cl := New(store, WithDeltaEncoding(8, 4))
	doc := bytes.Repeat([]byte("large stable document body. "), 200)
	if err := cl.Put(ctx, "doc", doc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		doc = append([]byte(nil), doc...)
		doc[i*100] ^= 0xFF
		if err := cl.Put(ctx, "doc", doc); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.Get(ctx, "doc")
	if err != nil || !bytes.Equal(got, doc) {
		t.Fatal("delta round trip failed")
	}
	if saved := cl.Stats().DeltaBytesSaved; saved <= 0 {
		t.Fatalf("DeltaBytesSaved = %d", saved)
	}
	ok, err := cl.Contains(ctx, "doc")
	if err != nil || !ok {
		t.Fatalf("Contains = %v, %v", ok, err)
	}
	if err := cl.Delete(ctx, "doc"); err != nil {
		t.Fatal(err)
	}
	if n, _ := store.Len(ctx); n != 0 {
		t.Fatalf("store has %d leftover delta keys", n)
	}
	if _, err := cl.Keys(ctx); err == nil {
		t.Fatal("Keys on delta client should error")
	}
	if _, err := cl.Len(ctx); err == nil {
		t.Fatal("Len on delta client should error")
	}
}

func TestDeltaWithCompression(t *testing.T) {
	ctx := context.Background()
	cl := New(kv.NewMem("m"),
		WithCompression(CompressionOptions{}),
		WithDeltaEncoding(8, 4))
	doc := bytes.Repeat([]byte("compressible and delta-friendly content. "), 100)
	_ = cl.Put(ctx, "doc", doc)
	doc2 := append(append([]byte(nil), doc...), []byte("tail")...)
	_ = cl.Put(ctx, "doc", doc2)
	got, err := cl.Get(ctx, "doc")
	if err != nil || !bytes.Equal(got, doc2) {
		t.Fatal("compression+delta round trip failed")
	}
}

func TestCacheFailureToleratedAsMiss(t *testing.T) {
	ctx := context.Background()
	store := kv.NewMem("m")
	brokenBacking := kv.NewMem("broken")
	cl := New(store, WithCache(NewStoreCache(brokenBacking)))
	_ = store.Put(ctx, "k", []byte("v"))
	_ = brokenBacking.Close() // cache now fails every operation
	v, err := cl.Get(ctx, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get with broken cache = %q, %v", v, err)
	}
	if cl.Stats().CacheErrors == 0 {
		t.Fatal("cache errors not counted")
	}
}

func TestContainsUsesCache(t *testing.T) {
	ctx := context.Background()
	store := newCountingStore()
	cl := New(store, WithCache(NewInProcessCache(InProcessOptions{})))
	_ = cl.Put(ctx, "k", []byte("v"))
	ok, err := cl.Contains(ctx, "k")
	if err != nil || !ok {
		t.Fatalf("Contains = %v, %v", ok, err)
	}
	if store.gets.Load() != 0 {
		t.Fatal("Contains went to the store despite a live cached entry")
	}
}

func TestClearWipesCacheAndStore(t *testing.T) {
	ctx := context.Background()
	store := kv.NewMem("m")
	cl := New(store, WithCache(NewInProcessCache(InProcessOptions{})))
	_ = cl.Put(ctx, "k", []byte("v"))
	if err := cl.Clear(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, "k"); !kv.IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestAccessors(t *testing.T) {
	store := kv.NewMem("base")
	cache := NewInProcessCache(InProcessOptions{})
	cl := New(store, WithCache(cache))
	if cl.Store() != store || cl.Cache() != Cache(cache) || cl.Name() != "base" {
		t.Fatal("accessors wrong")
	}
}

func TestConcurrentClientUse(t *testing.T) {
	ctx := context.Background()
	cl := New(kv.NewMem("m"),
		WithCache(NewInProcessCache(InProcessOptions{MaxEntries: 64, CopyOnCache: true})),
		WithTTL(time.Millisecond))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := string(rune('a' + (w+i)%20))
				switch i % 3 {
				case 0:
					if err := cl.Put(ctx, key, []byte(key)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if v, err := cl.Get(ctx, key); err == nil && string(v) != key {
						t.Errorf("Get(%q) = %q", key, v)
						return
					}
				case 2:
					_ = cl.Delete(ctx, key)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestClientChaos(t *testing.T) {
	// The full enhanced pipeline — cache, compression, encryption — must
	// stay linearizable per key when sandwiched between a fault injector
	// and the resilience wrapper.
	kvtest.RunChaos(t, func(t *testing.T) (kv.Store, func()) {
		return New(kv.NewMem("base"),
			WithCache(NewInProcessCache(InProcessOptions{CopyOnCache: true})),
			WithCompression(CompressionOptions{}),
			WithEncryption(bytes.Repeat([]byte{7}, KeySize))), nil
	}, kvtest.ChaosOptions{})
}
