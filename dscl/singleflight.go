package dscl

import (
	"context"
	"sync"
)

// Cache-stampede protection. When many goroutines miss on the same key at
// once (a popular key just expired, or a cold start), a naive client sends
// every one of them to the data store — the "thundering herd" §III's
// latency argument implicitly warns about. With WithSingleflight enabled,
// concurrent misses for one key share a single store fetch; the followers
// wait for the leader's result instead of dialing the server.

// flightShards is the number of lock stripes in a flightGroup (power of
// two). Registration is a short critical section, but under high miss
// concurrency a single mutex serializes every miss in the process; striping
// by key hash lets misses for unrelated keys register in parallel, the same
// scheme internal/cache uses for its shards.
const flightShards = 16

// flightGroup deduplicates concurrent fetches per key. The per-key state
// lives in one of flightShards stripes selected by FNV-1a hash, so goroutines
// missing on different keys rarely contend on the same lock.
type flightGroup struct {
	shards [flightShards]flightShard
}

type flightShard struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// flightHash is FNV-1a over the key, matching internal/cache's shard
// selection (allocation-free; no []byte conversion).
func flightHash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (g *flightGroup) shardFor(key string) *flightShard {
	return &g.shards[flightHash(key)&(flightShards-1)]
}

// do runs fetch once per key among concurrent callers. leader reports
// whether this caller performed the fetch.
func (g *flightGroup) do(ctx context.Context, key string, fetch func() ([]byte, error)) (val []byte, leader bool, err error) {
	s := g.shardFor(key)
	s.mu.Lock()
	if s.calls == nil {
		s.calls = make(map[string]*flightCall)
	}
	if c, ok := s.calls[key]; ok {
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.val, false, c.err
		case <-ctx.Done():
			// The follower gives up waiting; the leader's fetch continues
			// and will still populate the cache.
			return nil, false, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	s.calls[key] = c
	s.mu.Unlock()

	c.val, c.err = fetch()
	close(c.done)

	s.mu.Lock()
	delete(s.calls, key)
	s.mu.Unlock()
	return c.val, true, c.err
}

// WithSingleflight enables fetch deduplication: concurrent cache misses for
// the same key issue one store read. The shared result slice must not be
// mutated by callers (the same discipline reference caching already
// requires).
func WithSingleflight() Option {
	return func(cl *Client) { cl.flights = &flightGroup{} }
}

// DedupedFetches reports how many Get calls were served by another caller's
// in-flight fetch instead of reaching the store.
func (cl *Client) DedupedFetches() int64 { return cl.deduped.Load() }

// fetchShared routes a miss through the flight group when enabled.
func (cl *Client) fetchShared(ctx context.Context, key string) ([]byte, error) {
	if cl.flights == nil {
		plain, raw, ver, err := cl.fetch(ctx, key)
		if err != nil {
			return nil, err
		}
		cl.cachePut(ctx, key, plain, raw, ver)
		return plain, nil
	}
	val, leader, err := cl.flights.do(ctx, key, func() ([]byte, error) {
		plain, raw, ver, ferr := cl.fetch(ctx, key)
		if ferr != nil {
			return nil, ferr
		}
		cl.cachePut(ctx, key, plain, raw, ver)
		return plain, nil
	})
	if !leader && err == nil {
		cl.deduped.Add(1)
	}
	return val, err
}
