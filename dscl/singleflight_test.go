package dscl

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edsc/kv"
)

// gatedStore blocks Gets until released, counting them.
type gatedStore struct {
	kv.Store
	gate chan struct{}
	gets atomic.Int64
}

func (g *gatedStore) Get(ctx context.Context, key string) ([]byte, error) {
	g.gets.Add(1)
	<-g.gate
	return g.Store.Get(ctx, key)
}

func TestSingleflightDeduplicatesMisses(t *testing.T) {
	ctx := context.Background()
	base := kv.NewMem("m")
	_ = base.Put(ctx, "hot", []byte("value"))
	gated := &gatedStore{Store: base, gate: make(chan struct{})}
	cl := New(gated,
		WithCache(NewInProcessCache(InProcessOptions{})),
		WithSingleflight())

	const callers = 16
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cl.Get(ctx, "hot")
		}(i)
	}
	// Give all goroutines time to pile onto the flight, then release.
	time.Sleep(20 * time.Millisecond)
	close(gated.gate)
	wg.Wait()

	for i := range results {
		if errs[i] != nil || string(results[i]) != "value" {
			t.Fatalf("caller %d: %q, %v", i, results[i], errs[i])
		}
	}
	if got := gated.gets.Load(); got != 1 {
		t.Fatalf("store gets = %d, want 1 (thundering herd not absorbed)", got)
	}
	if cl.DedupedFetches() != callers-1 {
		t.Fatalf("DedupedFetches = %d, want %d", cl.DedupedFetches(), callers-1)
	}
	// And the cache is now warm.
	if _, err := cl.Get(ctx, "hot"); err != nil {
		t.Fatal(err)
	}
	if gated.gets.Load() != 1 {
		t.Fatal("cache not populated by the leader")
	}
}

func TestSingleflightDistinctKeysIndependent(t *testing.T) {
	ctx := context.Background()
	base := kv.NewMem("m")
	_ = base.Put(ctx, "a", []byte("1"))
	_ = base.Put(ctx, "b", []byte("2"))
	gated := &gatedStore{Store: base, gate: make(chan struct{})}
	close(gated.gate) // no blocking; just count
	cl := New(gated, WithSingleflight())
	if _, err := cl.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if gated.gets.Load() != 2 {
		t.Fatalf("gets = %d, want 2 (different keys must not dedupe)", gated.gets.Load())
	}
}

func TestSingleflightErrorSharedThenRetried(t *testing.T) {
	ctx := context.Background()
	cl := New(kv.NewMem("m"), WithSingleflight())
	if _, err := cl.Get(ctx, "absent"); !kv.IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
	// The failed flight is forgotten: a later Get retries the store.
	_ = cl.Store().Put(ctx, "absent", []byte("now present"))
	v, err := cl.Get(ctx, "absent")
	if err != nil || string(v) != "now present" {
		t.Fatalf("retry after failed flight: %q, %v", v, err)
	}
}

func TestSingleflightFollowerContextCancel(t *testing.T) {
	ctx := context.Background()
	base := kv.NewMem("m")
	_ = base.Put(ctx, "k", []byte("v"))
	gated := &gatedStore{Store: base, gate: make(chan struct{})}
	cl := New(gated, WithCache(NewInProcessCache(InProcessOptions{})), WithSingleflight())

	leaderDone := make(chan error, 1)
	go func() {
		_, err := cl.Get(ctx, "k")
		leaderDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // leader is in flight

	cctx, cancel := context.WithCancel(ctx)
	followerDone := make(chan error, 1)
	go func() {
		_, err := cl.Get(cctx, "k")
		followerDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel() // follower gives up
	if err := <-followerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(gated.gate) // leader completes
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	// The leader still populated the cache despite the follower bailing.
	if _, err := cl.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if gated.gets.Load() != 1 {
		t.Fatalf("gets = %d, want 1", gated.gets.Load())
	}
}

// TestSingleflightShardsSpread sanity-checks the stripe hash: a realistic key
// population must land on more than one shard, or striping buys nothing.
func TestSingleflightShardsSpread(t *testing.T) {
	used := map[uint32]bool{}
	for i := 0; i < 256; i++ {
		used[flightHash("user:profile:"+string(rune('a'+i%26)))&(flightShards-1)] = true
	}
	if len(used) < flightShards/2 {
		t.Fatalf("256 keys hit only %d/%d shards", len(used), flightShards)
	}
}

// BenchmarkSingleflightDistinctKeys registers and completes flights for
// distinct keys from every P. Before the group was striped this serialized on
// one mutex; with stripes, throughput should stay roughly flat as -cpu grows
// (run with -cpu=1,4,8 to see the scaling).
func BenchmarkSingleflightDistinctKeys(b *testing.B) {
	g := &flightGroup{}
	ctx := context.Background()
	payload := []byte("v")
	var id atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		key := "bench:key:" + strconv.FormatInt(id.Add(1), 10)
		fetch := func() ([]byte, error) { return payload, nil }
		for pb.Next() {
			if _, _, err := g.do(ctx, key, fetch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSingleflightHotKey is the contended counterpoint: every P fights
// over one key. This measures the dedup handoff itself, not stripe scaling.
func BenchmarkSingleflightHotKey(b *testing.B) {
	g := &flightGroup{}
	ctx := context.Background()
	payload := []byte("v")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		fetch := func() ([]byte, error) { return payload, nil }
		for pb.Next() {
			if _, _, err := g.do(ctx, "hot", fetch); err != nil {
				b.Fatal(err)
			}
		}
	})
}
