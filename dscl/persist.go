package dscl

import (
	"context"
	"time"

	"edsc/kv"
)

// Cache persistence (§III): "it is also often desirable to store some data
// from a cache persistently before shutting down a cache process. That way,
// when the cache is restarted, it can quickly be brought to a warm state."
//
// SaveTo writes every live entry of the in-process cache into any kv.Store
// (a file-system store, a miniredis server, a cloud bucket — anything
// implementing the common interface), and LoadFrom warms a fresh cache from
// it. Entries use the same envelope as StoreCache, so a saved cache is also
// directly readable as a StoreCache.

// SaveTo persists the cache's live entries into store, returning how many
// were written. Expired entries are saved too (they remain revalidation
// candidates after a restart).
func (p *InProcessCache) SaveTo(ctx context.Context, store kv.Store) (int, error) {
	var firstErr error
	n := 0
	p.c.Range(func(key string, e icacheEntry) bool {
		entry := Entry{Value: e.Value, Version: kv.Version(e.Version)}
		if e.ExpiresAt != 0 {
			entry.ExpiresAt = time.Unix(0, e.ExpiresAt)
		}
		if err := store.Put(ctx, key, encodeEnvelope(entry)); err != nil {
			firstErr = err
			return false
		}
		n++
		return true
	})
	return n, firstErr
}

// LoadFrom warms the cache from a store written by SaveTo, returning how
// many entries were loaded. Entries whose expiration time has passed are
// loaded as-is; they will surface as Stale and be revalidated. Foreign
// (non-envelope) values in the store are skipped rather than failing the
// warm start.
func (p *InProcessCache) LoadFrom(ctx context.Context, store kv.Store) (int, error) {
	keys, err := store.Keys(ctx)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, key := range keys {
		raw, err := store.Get(ctx, key)
		if err != nil {
			if kv.IsNotFound(err) {
				continue // deleted concurrently
			}
			return n, err
		}
		e, err := decodeEnvelope(raw)
		if err != nil {
			continue
		}
		if err := p.Put(ctx, key, e); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
