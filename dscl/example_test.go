package dscl_test

import (
	"context"
	"fmt"
	"time"

	"edsc/dscl"
	"edsc/kv"
)

// The tight-integration pattern (§II): wrap any store, get caching and
// transforms transparently.
func ExampleNew() {
	ctx := context.Background()
	store := kv.NewMem("backend")

	client := dscl.New(store,
		dscl.WithCache(dscl.NewInProcessCache(dscl.InProcessOptions{MaxEntries: 1024})),
		dscl.WithTTL(time.Minute),
		dscl.WithCompression(dscl.CompressionOptions{}),
	)

	_ = client.Put(ctx, "config", []byte("feature-flags"))
	v, _ := client.Get(ctx, "config") // served from cache
	fmt.Println(string(v))
	st := client.Stats()
	fmt.Println("hits:", st.CacheHits, "store reads:", st.StoreReads)
	// Output:
	// feature-flags
	// hits: 1 store reads: 0
}

// Explicit cache control (caching approach 2 of §III): applications can
// manage the cache directly through the Cache interface.
func ExampleClient_Cache() {
	ctx := context.Background()
	client := dscl.New(kv.NewMem("backend"),
		dscl.WithCache(dscl.NewInProcessCache(dscl.InProcessOptions{})))

	_ = client.Put(ctx, "user:1", []byte("cached"))
	// Precise control: invalidate one entry explicitly.
	dropped, _ := client.Cache().Delete(ctx, "user:1")
	fmt.Println("dropped:", dropped)
	// Output:
	// dropped: true
}

// Client-side encryption (§II): the store only ever sees ciphertext.
func ExampleEncryptionFromPassphrase() {
	ctx := context.Background()
	store := kv.NewMem("untrusted")
	client := dscl.New(store, dscl.WithTransform(dscl.EncryptionFromPassphrase("secret")))

	_ = client.Put(ctx, "doc", []byte("confidential"))
	raw, _ := store.Get(ctx, "doc")
	fmt.Println("store sees plaintext:", string(raw) == "confidential")
	v, _ := client.Get(ctx, "doc")
	fmt.Println("client reads:", string(v))
	// Output:
	// store sees plaintext: false
	// client reads: confidential
}

// Chained transforms: compress first, then encrypt (the only useful order).
func ExampleChain() {
	t := dscl.Chain(
		dscl.Compression(dscl.CompressionOptions{}),
		dscl.EncryptionFromPassphrase("pw"),
	)
	fmt.Println(t.Name())
	// Output:
	// gzip+aes128
}
