package dscl

import (
	"context"
	"sync/atomic"
	"time"

	"edsc/internal/delta"
	"edsc/kv"
	"edsc/monitor"
)

// WritePolicy selects how Put interacts with the cache.
type WritePolicy int

const (
	// WriteThrough updates the cache with the new value after a
	// successful store write (reads of recently written keys hit).
	WriteThrough WritePolicy = iota
	// WriteInvalidate removes the key from the cache after a store write;
	// the next read re-fetches. Useful when other clients also write.
	WriteInvalidate
	// WriteAround leaves the cache untouched on writes.
	WriteAround
)

// Stats are the client's cumulative counters.
type Stats struct {
	CacheHits         int64
	CacheMisses       int64
	StaleHits         int64 // stale entries found (revalidation candidates)
	Revalidations     int64 // conditional fetches issued
	RevalidatedFresh  int64 // revalidations answered "not modified"
	StoreReads        int64
	StoreWrites       int64
	CacheErrors       int64 // cache failures tolerated (treated as misses)
	DeltaBytesSaved   int64 // bytes not sent thanks to delta encoding
	TransformInBytes  int64 // plaintext bytes written through transforms
	TransformOutBytes int64 // encoded bytes actually stored
}

// Client is an enhanced data store client: the tight-integration form of
// the DSCL (§II). It wraps any kv.Store and transparently adds caching with
// expiration management and revalidation, encryption, compression, and
// delta encoding. Client itself implements kv.Store, so enhanced clients
// compose with everything written against the common interface (UDSM
// monitoring, the async interface, the workload generator).
type Client struct {
	store     kv.Store
	cache     Cache
	transform Transform
	ttl       time.Duration
	policy    WritePolicy
	reval     bool
	cacheRaw  bool
	chain     *delta.Chain
	clock     func() time.Time
	negTTL    time.Duration
	closed    atomic.Bool
	hub       *Hub
	hubID     int
	flights   *flightGroup
	refresher *refreshTracker

	hits, misses, stale, revals, fresh atomic.Int64
	reads, writes, cacheErrs           atomic.Int64
	deltaSaved, tfIn, tfOut            atomic.Int64
	invalidations                      atomic.Int64
	deduped                            atomic.Int64
	refreshes                          atomic.Int64
	negHits                            atomic.Int64
}

var _ kv.Store = (*Client)(nil)

// Option configures a Client.
type Option func(*Client)

// WithCache attaches a cache. Without one the client only applies
// transforms (a compression/encryption-only enhanced client).
func WithCache(c Cache) Option { return func(cl *Client) { cl.cache = c } }

// WithTTL sets the expiration time assigned to cached entries (0 = entries
// never expire). Expired entries are revalidated, not dropped.
func WithTTL(d time.Duration) Option { return func(cl *Client) { cl.ttl = d } }

// WithWritePolicy selects the cache behaviour of Put (default WriteThrough).
func WithWritePolicy(p WritePolicy) Option { return func(cl *Client) { cl.policy = p } }

// WithRevalidation enables conditional fetches for stale entries when the
// store supports versions (kv.Versioned). Default on.
func WithRevalidation(enabled bool) Option { return func(cl *Client) { cl.reval = enabled } }

// WithTransform appends a transform to the store-side pipeline. Order
// matters: compression should precede encryption.
func WithTransform(t Transform) Option {
	return func(cl *Client) {
		if t == nil {
			return
		}
		if cl.transform == nil {
			cl.transform = t
			return
		}
		cl.transform = Chain(cl.transform, t)
	}
}

// WithCompression is shorthand for WithTransform(Compression(opts)).
func WithCompression(opts CompressionOptions) Option { return WithTransform(Compression(opts)) }

// WithEncryption is shorthand for WithTransform(Encryption(key)); it panics
// on an invalid key size, as misconfigured encryption must not silently
// store plaintext.
func WithEncryption(key []byte) Option {
	t, err := Encryption(key)
	if err != nil {
		panic(err)
	}
	return WithTransform(t)
}

// WithCacheTransformed caches the encoded (encrypted/compressed) bytes
// instead of plaintext. The paper's point that "data should often be
// encrypted before it is cached": with this option a stolen cache — remote
// or in-process — holds only ciphertext, at the cost of decoding on every
// hit.
func WithCacheTransformed() Option { return func(cl *Client) { cl.cacheRaw = true } }

// WithDeltaEncoding stores updates as deltas against the previous version
// when that is smaller (§IV), using a client-managed delta chain so the
// server needs no delta support. windowSize < 2 selects the default
// minimum match length; maxDeltas bounds the chain before consolidation.
// Delta encoding changes the server-side layout and bypasses version
// tracking, so revalidation is disabled for delta clients.
func WithDeltaEncoding(windowSize, maxDeltas int) Option {
	return func(cl *Client) {
		cl.chain = delta.NewChain(cl.store, delta.NewEncoder(windowSize), maxDeltas)
	}
}

// withClock overrides time.Now in tests.
func withClock(f func() time.Time) Option { return func(cl *Client) { cl.clock = f } }

// New builds an enhanced client over store.
func New(store kv.Store, opts ...Option) *Client {
	cl := &Client{store: store, reval: true, clock: time.Now}
	for _, o := range opts {
		o(cl)
	}
	return cl
}

// Layer adapts the enhanced client to the kv middleware model, so a DSCL
// stage drops into a kv.Stack pipeline:
//
//	kv.Stack(base, resilient.Layer(ropts), dscl.Layer(dscl.WithCache(c)))
func Layer(opts ...Option) kv.Layer {
	return func(inner kv.Store) kv.Store { return New(inner, opts...) }
}

// Store returns the wrapped store (the native client, for operations beyond
// the enhanced interface).
func (cl *Client) Store() kv.Store { return cl.store }

// Unwrap implements kv.Wrapper, so capabilities the client does not
// intercept — kv.SQL above all — are discovered on the wrapped store by the
// kv.As walk. A delta-encoded client returns nil: the chain owns the
// physical layout, and reaching the raw store underneath it would read
// chain records, not values.
func (cl *Client) Unwrap() kv.Store {
	if cl.chain != nil {
		return nil
	}
	return cl.store
}

// Intercepts implements kv.Interceptor. The client's method set statically
// covers every capability it must re-encode or keep cache-coherent
// (Versioned, Expiring, CompareAndPut, Batch — see capabilities.go), but it
// only claims the ones its wrapped stack can actually serve; for the rest
// the kv.As walk continues past it. Delta-encoded clients decline them all:
// version tracking and TTLs do not survive the chain layout.
func (cl *Client) Intercepts(capability any) bool {
	switch capability.(type) {
	case *kv.Versioned, *kv.VersionedBatch:
		if cl.chain != nil {
			return false
		}
		_, ok := kv.As[kv.Versioned](cl.store)
		return ok
	case *kv.Expiring:
		if cl.chain != nil {
			return false
		}
		_, ok := kv.As[kv.Expiring](cl.store)
		return ok
	case *kv.CompareAndPut:
		if cl.chain != nil {
			return false
		}
		_, ok := kv.As[kv.CompareAndPut](cl.store)
		return ok
	}
	return true
}

// Cache returns the attached cache (nil when none), giving applications the
// explicit fine-grained control of caching approach 2 alongside the tight
// integration.
func (cl *Client) Cache() Cache { return cl.cache }

// Stats returns a snapshot of the client's counters.
func (cl *Client) Stats() Stats {
	return Stats{
		CacheHits:         cl.hits.Load(),
		CacheMisses:       cl.misses.Load(),
		StaleHits:         cl.stale.Load(),
		Revalidations:     cl.revals.Load(),
		RevalidatedFresh:  cl.fresh.Load(),
		StoreReads:        cl.reads.Load(),
		StoreWrites:       cl.writes.Load(),
		CacheErrors:       cl.cacheErrs.Load(),
		DeltaBytesSaved:   cl.deltaSaved.Load(),
		TransformInBytes:  cl.tfIn.Load(),
		TransformOutBytes: cl.tfOut.Load(),
	}
}

// Name implements kv.Store.
func (cl *Client) Name() string { return cl.store.Name() }

// checkKey validates key, honours an already-cancelled context, and
// rejects use after Close.
func (cl *Client) checkKey(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if cl.closed.Load() {
		return kv.ErrClosed
	}
	return kv.CheckKey(key)
}

func (cl *Client) expiry() time.Time {
	if cl.ttl <= 0 {
		return time.Time{}
	}
	return cl.clock().Add(cl.ttl)
}

// encode runs the transform pipeline on a value bound for the store.
func (cl *Client) encode(value []byte) ([]byte, error) {
	if cl.transform == nil {
		return value, nil
	}
	out, err := cl.transform.Encode(value)
	if err != nil {
		return nil, err
	}
	cl.tfIn.Add(int64(len(value)))
	cl.tfOut.Add(int64(len(out)))
	return out, nil
}

// decode reverses the transform pipeline on a value from the store.
func (cl *Client) decode(data []byte) ([]byte, error) {
	if cl.transform == nil {
		return data, nil
	}
	return cl.transform.Decode(data)
}

// cachedToPlain converts a cached value to the application view.
func (cl *Client) cachedToPlain(v []byte) ([]byte, error) {
	if cl.cacheRaw {
		return cl.decode(v)
	}
	return v, nil
}

// plainForCache converts (plain, encoded) to what the cache should hold.
func (cl *Client) plainForCache(plain, encoded []byte) []byte {
	if cl.cacheRaw {
		return encoded
	}
	return plain
}

// Get implements kv.Store: cache first, revalidate stale entries when
// possible, fall back to the store, and populate the cache on the way out.
func (cl *Client) Get(ctx context.Context, key string) ([]byte, error) {
	if err := cl.checkKey(ctx, key); err != nil {
		return nil, err
	}
	var staleEntry *Entry
	if cl.cache != nil {
		e, state, err := cl.cache.Get(ctx, key)
		switch {
		case err != nil:
			cl.cacheErrs.Add(1)
		case state == Hit && isNegative(e):
			cl.negHits.Add(1)
			return nil, kv.ErrNotFound
		case state == Hit:
			cl.hits.Add(1)
			return cl.cachedToPlain(e.Value)
		case state == Stale && isNegative(e):
			cl.misses.Add(1) // expired tombstone: re-consult the store
		case state == Stale:
			cl.stale.Add(1)
			staleEntry = &e
		default:
			cl.misses.Add(1)
		}
	}

	// Stale-while-revalidate: serve the expired entry now, refresh in the
	// background.
	if staleEntry != nil {
		if v, ok := cl.serveStaleAndRefresh(key, staleEntry); ok {
			return v, nil
		}
	}

	// Every path from here reaches the store: tag the context with a
	// request ID so retries, hedges, and server logs correlate. The
	// cache-hit fast paths above stay untagged — no wire traffic to trace.
	ctx, _ = monitor.WithRequestID(ctx)

	// Revalidation path: ask the server whether our stale copy is current.
	if staleEntry != nil && cl.reval && cl.chain == nil && staleEntry.Version != kv.NoVersion {
		if vs, ok := kv.As[kv.Versioned](cl.store); ok {
			cl.revals.Add(1)
			revalStart := time.Now()
			data, ver, modified, err := vs.GetIfModified(ctx, key, staleEntry.Version)
			monitor.AddSpan(ctx, "dscl", "revalidate", revalStart, err != nil)
			switch {
			case kv.IsNotFound(err):
				_, _ = cl.cache.Delete(ctx, key)
				return nil, err
			case err != nil:
				return nil, err
			case !modified:
				// Server confirms our copy: renew the lease, no transfer.
				cl.fresh.Add(1)
				if _, terr := cl.cache.Touch(ctx, key, cl.expiry(), ver); terr != nil {
					cl.cacheErrs.Add(1)
				}
				return cl.cachedToPlain(staleEntry.Value)
			default:
				cl.reads.Add(1)
				plain, err := cl.decode(data)
				if err != nil {
					return nil, err
				}
				cl.cachePut(ctx, key, plain, data, ver)
				return plain, nil
			}
		}
	}

	// Full fetch (deduplicated across concurrent callers when
	// WithSingleflight is enabled).
	plain, err := cl.fetchShared(ctx, key)
	if err != nil {
		if kv.IsNotFound(err) && cl.cache != nil {
			// Drop any stale entry for a key the server no longer has,
			// then (if enabled) remember the miss with a tombstone.
			if _, derr := cl.cache.Delete(ctx, key); derr != nil {
				cl.cacheErrs.Add(1)
			}
			cl.cacheNegative(ctx, key)
		}
		return nil, err
	}
	return plain, nil
}

// fetch reads from the store (through the delta chain when configured),
// returning the plaintext, the encoded bytes, and the version when known.
func (cl *Client) fetch(ctx context.Context, key string) (plain, raw []byte, ver kv.Version, err error) {
	cl.reads.Add(1)
	start := time.Now()
	defer func() { monitor.AddSpan(ctx, "dscl", "fetch", start, err != nil) }()
	if cl.chain != nil {
		raw, err = cl.chain.Get(ctx, key)
	} else if vs, ok := kv.As[kv.Versioned](cl.store); ok {
		raw, ver, err = vs.GetVersioned(ctx, key)
	} else {
		raw, err = cl.store.Get(ctx, key)
	}
	if err != nil {
		return nil, nil, kv.NoVersion, err
	}
	plain, err = cl.decode(raw)
	if err != nil {
		return nil, nil, kv.NoVersion, err
	}
	return plain, raw, ver, nil
}

// cachePut installs a fetched or written value into the cache.
func (cl *Client) cachePut(ctx context.Context, key string, plain, encoded []byte, ver kv.Version) {
	if cl.cache == nil {
		return
	}
	e := Entry{Value: cl.plainForCache(plain, encoded), Version: ver, ExpiresAt: cl.expiry()}
	if err := cl.cache.Put(ctx, key, e); err != nil {
		cl.cacheErrs.Add(1)
	}
}

// Put implements kv.Store: transform, write (optionally as a delta), then
// update or invalidate the cache per the write policy.
func (cl *Client) Put(ctx context.Context, key string, value []byte) error {
	if err := cl.checkKey(ctx, key); err != nil {
		return err
	}
	encoded, err := cl.encode(value)
	if err != nil {
		return err
	}
	ctx, _ = monitor.WithRequestID(ctx)
	cl.writes.Add(1)
	var ver kv.Version
	if cl.chain != nil {
		sent, err := cl.chain.Put(ctx, key, encoded)
		if err != nil {
			return err
		}
		cl.deltaSaved.Add(int64(len(encoded) - sent))
	} else if vs, ok := kv.As[kv.Versioned](cl.store); ok {
		if ver, err = vs.PutVersioned(ctx, key, encoded); err != nil {
			return err
		}
	} else if err := cl.store.Put(ctx, key, encoded); err != nil {
		return err
	}

	cl.notifyWrite(key)
	if cl.cache == nil {
		return nil
	}
	switch cl.policy {
	case WriteThrough:
		// Cache a private copy: the caller may mutate its slice later.
		plain := append([]byte(nil), value...)
		cl.cachePut(ctx, key, plain, encoded, ver)
	case WriteInvalidate:
		if _, err := cl.cache.Delete(ctx, key); err != nil {
			cl.cacheErrs.Add(1)
		}
	case WriteAround:
	}
	return nil
}

// Delete implements kv.Store.
func (cl *Client) Delete(ctx context.Context, key string) error {
	if err := cl.checkKey(ctx, key); err != nil {
		return err
	}
	if cl.cache != nil {
		if _, err := cl.cache.Delete(ctx, key); err != nil {
			cl.cacheErrs.Add(1)
		}
	}
	var err error
	if cl.chain != nil {
		err = cl.chain.Delete(ctx, key)
	} else {
		err = cl.store.Delete(ctx, key)
	}
	if err == nil || kv.IsNotFound(err) {
		cl.notifyWrite(key)
	}
	return err
}

// Contains implements kv.Store. A live cached entry answers without a
// round trip; otherwise the store is consulted.
func (cl *Client) Contains(ctx context.Context, key string) (bool, error) {
	if err := cl.checkKey(ctx, key); err != nil {
		return false, err
	}
	if cl.cache != nil {
		if e, state, err := cl.cache.Get(ctx, key); err == nil && state == Hit {
			if isNegative(e) {
				cl.negHits.Add(1)
				return false, nil
			}
			cl.hits.Add(1)
			return true, nil
		}
	}
	if cl.chain != nil {
		return cl.chain.Contains(ctx, key)
	}
	return cl.store.Contains(ctx, key)
}

// Keys implements kv.Store (delegated to the store: the cache holds a
// subset). Not supported through a delta chain, whose physical keys are
// derived names.
func (cl *Client) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cl.closed.Load() {
		return nil, kv.ErrClosed
	}
	if cl.chain != nil {
		return nil, &kv.StoreError{Store: cl.Name(), Op: "keys", Err: errDeltaKeys}
	}
	return cl.store.Keys(ctx)
}

// Len implements kv.Store.
func (cl *Client) Len(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if cl.closed.Load() {
		return 0, kv.ErrClosed
	}
	if cl.chain != nil {
		return 0, &kv.StoreError{Store: cl.Name(), Op: "len", Err: errDeltaKeys}
	}
	return cl.store.Len(ctx)
}

// Clear implements kv.Store.
func (cl *Client) Clear(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if cl.closed.Load() {
		return kv.ErrClosed
	}
	if cl.cache != nil {
		if err := cl.cache.Clear(ctx); err != nil {
			cl.cacheErrs.Add(1)
		}
	}
	return cl.store.Clear(ctx)
}

// Close implements kv.Store. The client refuses further operations; the
// wrapped store is closed too.
func (cl *Client) Close() error {
	cl.closed.Store(true)
	cl.DetachHub()
	return cl.store.Close()
}

var errDeltaKeys = errDeltaKeysType{}

type errDeltaKeysType struct{}

func (errDeltaKeysType) Error() string {
	return "key enumeration is not supported on a delta-encoded client"
}
