package dscl

import (
	"context"
	"sync"

	"edsc/kv"
)

// Stale-while-revalidate: §III keeps expired entries around so they can be
// revalidated instead of re-fetched; the synchronous path still pays the
// revalidation round trip on the first access after expiry. With
// WithStaleWhileRevalidate enabled the client returns the stale value
// immediately and refreshes the entry in the background, so readers never
// block on the server once a value is cached — at the cost of bounded
// staleness (one refresh interval past the TTL).
//
// Refreshes are deduplicated per key; a slow store cannot accumulate
// goroutines for one hot entry.

type refreshTracker struct {
	mu       sync.Mutex
	inflight map[string]bool
	// wg lets tests (and Close) wait for background refreshes.
	wg sync.WaitGroup
}

// WithStaleWhileRevalidate makes Get return stale entries immediately while
// refreshing them asynchronously. Combine with WithTTL; without a TTL
// entries never go stale and the option is inert.
func WithStaleWhileRevalidate() Option {
	return func(cl *Client) {
		cl.refresher = &refreshTracker{inflight: make(map[string]bool)}
	}
}

// Refreshes reports how many background refreshes have been started.
func (cl *Client) Refreshes() int64 { return cl.refreshes.Load() }

// WaitRefreshes blocks until all in-flight background refreshes finish
// (primarily for tests and orderly shutdown).
func (cl *Client) WaitRefreshes() {
	if cl.refresher != nil {
		cl.refresher.wg.Wait()
	}
}

// serveStaleAndRefresh returns the stale value and schedules one background
// refresh for the key. It reports false when SWR is not enabled.
func (cl *Client) serveStaleAndRefresh(key string, stale *Entry) ([]byte, bool) {
	if cl.refresher == nil || stale == nil {
		return nil, false
	}
	r := cl.refresher
	r.mu.Lock()
	already := r.inflight[key]
	if !already {
		r.inflight[key] = true
		r.wg.Add(1)
	}
	r.mu.Unlock()

	if !already {
		cl.refreshes.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() {
				r.mu.Lock()
				delete(r.inflight, key)
				r.mu.Unlock()
			}()
			// Background refresh: detached from the caller's context.
			ctx := context.Background()
			if cl.reval && cl.chain == nil && stale.Version != kv.NoVersion {
				if vs, ok := kv.As[kv.Versioned](cl.store); ok {
					cl.revals.Add(1)
					_, ver, modified, err := vs.GetIfModified(ctx, key, stale.Version)
					if err == nil && !modified {
						cl.fresh.Add(1)
						if _, terr := cl.cache.Touch(ctx, key, cl.expiry(), ver); terr != nil {
							cl.cacheErrs.Add(1)
						}
						return
					}
				}
			}
			if _, err := cl.fetchShared(ctx, key); err != nil {
				// A vanished key must not be served stale forever.
				if kv.IsNotFound(err) {
					if _, derr := cl.cache.Delete(ctx, key); derr != nil {
						cl.cacheErrs.Add(1)
					}
				}
			}
		}()
	}

	v, err := cl.cachedToPlain(stale.Value)
	if err != nil {
		return nil, false
	}
	return v, true
}
