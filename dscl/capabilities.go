package dscl

import (
	"context"
	"time"

	"edsc/kv"
	"edsc/monitor"
)

// Capability interception (see kv.As). The enhanced client cannot be
// transparent to capabilities that move values or mutate keys: transforms
// must re-encode them and the cache must stay coherent with them. So the
// client implements each such capability itself and intercepts it whenever
// the wrapped stack supports it (Intercepts in client.go); kv.SQL is the
// one capability with neither values to re-encode nor keys the cache could
// hold under the same name, and is the only one left to fall through
// Unwrap.
//
// Coherence rules:
//
//   - Version-aware reads (GetVersioned, GetIfModified) have no cache side
//     effects: installing a version-pinned read could reorder against
//     concurrent writers, and callers using versions are doing their own
//     coherence reasoning.
//   - PutVersioned follows the configured write policy, like Put.
//   - PutIfVersion always invalidates, never write-through: two racing CAS
//     winners may complete out of order, and a write-through of the loser's
//     value would pin a stale entry until TTL. Invalidation is always safe.
//   - PutTTL caches through the write policy, but bounds the entry's
//     expiration by the server-side TTL so the cache cannot serve a value
//     the store has already expired.

var (
	_ kv.Versioned      = (*Client)(nil)
	_ kv.VersionedBatch = (*Client)(nil)
	_ kv.Expiring       = (*Client)(nil)
	_ kv.CompareAndPut  = (*Client)(nil)
)

// GetVersioned implements kv.Versioned: a store read through the transform
// pipeline, bypassing the cache in both directions.
func (cl *Client) GetVersioned(ctx context.Context, key string) ([]byte, kv.Version, error) {
	if err := cl.checkKey(ctx, key); err != nil {
		return nil, kv.NoVersion, err
	}
	vs, err := cl.requireVersioned("getversioned", key)
	if err != nil {
		return nil, kv.NoVersion, err
	}
	ctx, _ = monitor.WithRequestID(ctx)
	cl.reads.Add(1)
	raw, ver, err := vs.GetVersioned(ctx, key)
	if err != nil {
		return nil, kv.NoVersion, err
	}
	plain, err := cl.decode(raw)
	if err != nil {
		return nil, kv.NoVersion, err
	}
	return plain, ver, nil
}

// GetIfModified implements kv.Versioned. The unmodified answer carries no
// value, so only the modified branch decodes.
func (cl *Client) GetIfModified(ctx context.Context, key string, since kv.Version) ([]byte, kv.Version, bool, error) {
	if err := cl.checkKey(ctx, key); err != nil {
		return nil, kv.NoVersion, false, err
	}
	vs, err := cl.requireVersioned("getifmodified", key)
	if err != nil {
		return nil, kv.NoVersion, false, err
	}
	ctx, _ = monitor.WithRequestID(ctx)
	cl.reads.Add(1)
	raw, ver, modified, err := vs.GetIfModified(ctx, key, since)
	if err != nil {
		return nil, kv.NoVersion, false, err
	}
	if !modified {
		return nil, ver, false, nil
	}
	plain, err := cl.decode(raw)
	if err != nil {
		return nil, kv.NoVersion, false, err
	}
	return plain, ver, true, nil
}

// GetMultiVersioned implements kv.VersionedBatch (with GetMulti/PutMulti
// from batch.go): one batched versioned read through the transform
// pipeline. Like the other version-aware reads it has no cache side
// effects — were this left to fall through to the store, a transform client
// would hand callers undecoded bytes.
func (cl *Client) GetMultiVersioned(ctx context.Context, keys []string) (map[string]kv.VersionedValue, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cl.closed.Load() {
		return nil, kv.ErrClosed
	}
	if _, err := cl.requireVersioned("getmultiversioned", ""); err != nil {
		return nil, err
	}
	for _, k := range keys {
		if err := kv.CheckKey(k); err != nil {
			return nil, err
		}
	}
	ctx, _ = monitor.WithRequestID(ctx)
	cl.reads.Add(1) // one batched store read, whatever the key count
	got, err := kv.GetMultiVersioned(ctx, cl.store, keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string]kv.VersionedValue, len(got))
	for k, vv := range got {
		plain, derr := cl.decode(vv.Value)
		if derr != nil {
			return out, derr
		}
		out[k] = kv.VersionedValue{Value: plain, Version: vv.Version}
	}
	return out, nil
}

// PutVersioned implements kv.Versioned: transform, write, then apply the
// write policy with the returned version — the versioned twin of Put.
func (cl *Client) PutVersioned(ctx context.Context, key string, value []byte) (kv.Version, error) {
	if err := cl.checkKey(ctx, key); err != nil {
		return kv.NoVersion, err
	}
	vs, err := cl.requireVersioned("putversioned", key)
	if err != nil {
		return kv.NoVersion, err
	}
	encoded, err := cl.encode(value)
	if err != nil {
		return kv.NoVersion, err
	}
	ctx, _ = monitor.WithRequestID(ctx)
	cl.writes.Add(1)
	ver, err := vs.PutVersioned(ctx, key, encoded)
	if err != nil {
		return kv.NoVersion, err
	}
	cl.notifyWrite(key)
	cl.applyWritePolicy(ctx, key, value, encoded, ver)
	return ver, nil
}

// PutIfVersion implements kv.CompareAndPut: transform, conditional write,
// and — win or lose — invalidate the cached entry (see the coherence rules
// above).
func (cl *Client) PutIfVersion(ctx context.Context, key string, value []byte, since kv.Version) (kv.Version, error) {
	if err := cl.checkKey(ctx, key); err != nil {
		return kv.NoVersion, err
	}
	cas, ok := kv.As[kv.CompareAndPut](cl.store)
	if !ok || cl.chain != nil {
		return kv.NoVersion, cl.unsupported("cas", key, "kv.CompareAndPut")
	}
	encoded, err := cl.encode(value)
	if err != nil {
		return kv.NoVersion, err
	}
	ctx, _ = monitor.WithRequestID(ctx)
	cl.writes.Add(1)
	ver, casErr := cas.PutIfVersion(ctx, key, encoded, since)
	// The write may have applied even when the race was lost upstream of a
	// retrying layer; dropping the entry is correct in every outcome.
	if cl.cache != nil {
		if _, derr := cl.cache.Delete(ctx, key); derr != nil {
			cl.cacheErrs.Add(1)
		}
	}
	if casErr != nil {
		return kv.NoVersion, casErr
	}
	cl.notifyWrite(key)
	return ver, nil
}

// PutTTL implements kv.Expiring: transform, TTL write, then cache through
// the write policy with the entry's expiration clamped to the server-side
// TTL.
func (cl *Client) PutTTL(ctx context.Context, key string, value []byte, ttlNanos int64) error {
	if err := cl.checkKey(ctx, key); err != nil {
		return err
	}
	es, err := cl.requireExpiring("putttl", key)
	if err != nil {
		return err
	}
	encoded, err := cl.encode(value)
	if err != nil {
		return err
	}
	ctx, _ = monitor.WithRequestID(ctx)
	cl.writes.Add(1)
	if err := es.PutTTL(ctx, key, encoded, ttlNanos); err != nil {
		return err
	}
	cl.notifyWrite(key)
	if cl.cache == nil {
		return nil
	}
	switch cl.policy {
	case WriteThrough:
		plain := append([]byte(nil), value...)
		exp := cl.expiry()
		if ttlNanos > 0 {
			serverExp := cl.clock().Add(time.Duration(ttlNanos))
			if exp.IsZero() || serverExp.Before(exp) {
				exp = serverExp
			}
		}
		e := Entry{Value: cl.plainForCache(plain, encoded), Version: kv.NoVersion, ExpiresAt: exp}
		if cerr := cl.cache.Put(ctx, key, e); cerr != nil {
			cl.cacheErrs.Add(1)
		}
	case WriteInvalidate:
		if _, derr := cl.cache.Delete(ctx, key); derr != nil {
			cl.cacheErrs.Add(1)
		}
	case WriteAround:
	}
	return nil
}

// TTL implements kv.Expiring, delegated to the store: the cache's private
// expiry is a revalidation lease, not the server-side TTL the caller asked
// about.
func (cl *Client) TTL(ctx context.Context, key string) (int64, error) {
	if err := cl.checkKey(ctx, key); err != nil {
		return 0, err
	}
	es, err := cl.requireExpiring("ttl", key)
	if err != nil {
		return 0, err
	}
	return es.TTL(ctx, key)
}

// applyWritePolicy mirrors Put's cache handling for a successful versioned
// write.
func (cl *Client) applyWritePolicy(ctx context.Context, key string, plain, encoded []byte, ver kv.Version) {
	if cl.cache == nil {
		return
	}
	switch cl.policy {
	case WriteThrough:
		// Cache a private copy: the caller may mutate its slice later.
		buf := append([]byte(nil), plain...)
		cl.cachePut(ctx, key, buf, encoded, ver)
	case WriteInvalidate:
		if _, err := cl.cache.Delete(ctx, key); err != nil {
			cl.cacheErrs.Add(1)
		}
	case WriteAround:
	}
}

func (cl *Client) requireVersioned(op, key string) (kv.Versioned, error) {
	if cl.chain == nil {
		if vs, ok := kv.As[kv.Versioned](cl.store); ok {
			return vs, nil
		}
	}
	return nil, cl.unsupported(op, key, "kv.Versioned")
}

func (cl *Client) requireExpiring(op, key string) (kv.Expiring, error) {
	if cl.chain == nil {
		if es, ok := kv.As[kv.Expiring](cl.store); ok {
			return es, nil
		}
	}
	return nil, cl.unsupported(op, key, "kv.Expiring")
}

func (cl *Client) unsupported(op, key, capability string) error {
	return &kv.StoreError{Store: cl.Name(), Op: op, Key: key,
		Err: errUnsupported(capability)}
}

type errUnsupported string

func (e errUnsupported) Error() string {
	return "dscl: wrapped store does not implement " + string(e)
}
