package dscl

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"edsc/kv"
	"edsc/kv/kvtest"
)

// batchStore adds an instrumented kv.VersionedBatch to versionedStore so
// tests can tell batched round trips from per-key loops.
type batchStore struct {
	*versionedStore
	batchGets, batchPuts atomic.Int64
}

func (s *batchStore) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	got, err := s.GetMultiVersioned(ctx, keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(got))
	for k, vv := range got {
		out[k] = vv.Value
	}
	return out, nil
}

func (s *batchStore) GetMultiVersioned(ctx context.Context, keys []string) (map[string]kv.VersionedValue, error) {
	s.batchGets.Add(1)
	out := make(map[string]kv.VersionedValue, len(keys))
	for _, k := range keys {
		v, err := s.Mem.Get(ctx, k)
		if kv.IsNotFound(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[k] = kv.VersionedValue{Value: v, Version: s.version(k)}
	}
	return out, nil
}

func (s *batchStore) PutMulti(ctx context.Context, pairs map[string][]byte) error {
	s.batchPuts.Add(1)
	for k, v := range pairs {
		s.mu.Lock()
		s.versions[k]++
		s.mu.Unlock()
		if err := s.Mem.Put(ctx, k, v); err != nil {
			return err
		}
	}
	return nil
}

func newBatchStore() *batchStore {
	return &batchStore{versionedStore: &versionedStore{newCountingStore()}}
}

// TestGetMultiCoalescesMisses is the tentpole behaviour: cached keys are
// answered locally and ALL misses travel in one batched round trip.
func TestGetMultiCoalescesMisses(t *testing.T) {
	ctx := context.Background()
	store := newBatchStore()
	cl := New(store, WithCache(NewInProcessCache(InProcessOptions{})))

	for i := 0; i < 4; i++ {
		if err := store.Mem.Put(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the cache with one key; it must not be re-fetched below.
	if _, err := cl.Get(ctx, "k0"); err != nil {
		t.Fatal(err)
	}
	getsBefore := store.gets.Load()

	got, err := cl.GetMulti(ctx, []string{"k0", "k1", "k2", "k3", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || string(got["k0"]) != "v0" || string(got["k3"]) != "v3" {
		t.Fatalf("GetMulti = %v", got)
	}
	if _, ok := got["missing"]; ok {
		t.Fatal("absent key materialized in the result")
	}
	if n := store.batchGets.Load(); n != 1 {
		t.Fatalf("store saw %d batch gets, want exactly 1", n)
	}
	if n := store.gets.Load(); n != getsBefore {
		t.Fatalf("store saw %d extra per-key gets, want 0", n-getsBefore)
	}
	st := cl.Stats()
	// 5 misses: the warm-up Get plus the four keys the batch had to fetch.
	if st.CacheHits != 1 || st.CacheMisses != 5 {
		t.Fatalf("hits/misses = %d/%d, want 1/5", st.CacheHits, st.CacheMisses)
	}

	// The batch populated the cache: a full repeat is free.
	got, err = cl.GetMulti(ctx, []string{"k0", "k1", "k2", "k3"})
	if err != nil || len(got) != 4 {
		t.Fatalf("repeat GetMulti = %v, %v", got, err)
	}
	if n := store.batchGets.Load(); n != 1 {
		t.Fatalf("repeat GetMulti reached the store (%d batch gets)", n)
	}
}

// TestGetMultiCachesVersions: entries installed by the batch carry the
// store's version, so later singleton reads can revalidate instead of
// re-fetching.
func TestGetMultiCachesVersions(t *testing.T) {
	ctx := context.Background()
	store := newBatchStore()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	// The cache must share the clock so expiry is observable.
	cl := New(store,
		WithCache(storeCacheWithClock(clock)),
		WithTTL(time.Minute),
		withClock(clock))

	if err := store.Mem.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetMulti(ctx, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	e, state, err := cl.cache.Get(ctx, "k")
	if err != nil || state != Hit {
		t.Fatalf("cache state = %v, %v", state, err)
	}
	if e.Version != store.version("k") {
		t.Fatalf("cached version = %q, want %q", e.Version, store.version("k"))
	}
	if !e.ExpiresAt.Equal(now.Add(time.Minute)) {
		t.Fatalf("cached expiry = %v, want %v", e.ExpiresAt, now.Add(time.Minute))
	}

	// Past the TTL the entry is stale; the singleton Get path must
	// revalidate with the batch-installed version and get "not modified".
	now = now.Add(2 * time.Minute)
	if v, err := cl.Get(ctx, "k"); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if st := cl.Stats(); st.Revalidations != 1 || st.RevalidatedFresh != 1 {
		t.Fatalf("revalidations = %d fresh %d, want 1/1", st.Revalidations, st.RevalidatedFresh)
	}
}

// TestPutMultiWritePolicies: one batched write, cache updated per policy.
func TestPutMultiWritePolicies(t *testing.T) {
	ctx := context.Background()
	pairs := map[string][]byte{"a": []byte("1"), "b": []byte("2")}

	t.Run("write-through", func(t *testing.T) {
		store := newBatchStore()
		cl := New(store, WithCache(NewInProcessCache(InProcessOptions{})))
		if err := cl.PutMulti(ctx, pairs); err != nil {
			t.Fatal(err)
		}
		if n := store.batchPuts.Load(); n != 1 {
			t.Fatalf("store saw %d batch puts, want 1", n)
		}
		if n := store.puts.Load(); n != 0 {
			t.Fatalf("store saw %d per-key puts, want 0", n)
		}
		if v, err := cl.Get(ctx, "a"); err != nil || string(v) != "1" {
			t.Fatalf("Get = %q, %v", v, err)
		}
		if n := store.gets.Load() + store.batchGets.Load(); n != 0 {
			t.Fatalf("read after write-through PutMulti reached the store (%d reads)", n)
		}
	})

	t.Run("write-invalidate", func(t *testing.T) {
		store := newBatchStore()
		cl := New(store, WithCache(NewInProcessCache(InProcessOptions{})),
			WithWritePolicy(WriteInvalidate))
		if err := cl.PutMulti(ctx, pairs); err != nil {
			t.Fatal(err)
		}
		if v, err := cl.Get(ctx, "a"); err != nil || string(v) != "1" {
			t.Fatalf("Get = %q, %v", v, err)
		}
		if n := store.gets.Load() + store.batchGets.Load(); n == 0 {
			t.Fatal("read after write-invalidate PutMulti did not reach the store")
		}
	})
}

// TestBatchThroughTransforms: values cross the batch path encoded, and come
// back as plaintext.
func TestBatchThroughTransforms(t *testing.T) {
	ctx := context.Background()
	store := kv.NewMem("m")
	cl := New(store,
		WithCompression(CompressionOptions{}),
		WithEncryption(bytes.Repeat([]byte{7}, KeySize)))

	plain := bytes.Repeat([]byte("batched plaintext "), 20)
	if err := cl.PutMulti(ctx, map[string][]byte{"k": plain}); err != nil {
		t.Fatal(err)
	}
	raw, err := store.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("plaintext")) {
		t.Fatal("store holds plaintext after a transformed PutMulti")
	}
	got, err := cl.GetMulti(ctx, []string{"k"})
	if err != nil || !bytes.Equal(got["k"], plain) {
		t.Fatalf("GetMulti round trip failed: %v", err)
	}
}

// TestBatchWithDeltaEncoding: the delta chain has no batch fast path but the
// batch interface still works through the per-key fallback.
func TestBatchWithDeltaEncoding(t *testing.T) {
	ctx := context.Background()
	cl := New(kv.NewMem("m"), WithDeltaEncoding(0, 4))
	pairs := map[string][]byte{"a": []byte("alpha"), "b": []byte("beta")}
	if err := cl.PutMulti(ctx, pairs); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetMulti(ctx, []string{"a", "b", "c"})
	if err != nil || len(got) != 2 || string(got["a"]) != "alpha" {
		t.Fatalf("GetMulti = %v, %v", got, err)
	}
}

// TestClientBatchConformance runs the shared batch suite over the enhanced
// client in its common configurations.
func TestClientBatchConformance(t *testing.T) {
	t.Run("cached", func(t *testing.T) {
		kvtest.RunBatch(t, func(t *testing.T) (kv.Store, func()) {
			return New(kv.NewMem("base"),
				WithCache(NewInProcessCache(InProcessOptions{CopyOnCache: true}))), nil
		})
	})
	t.Run("transforms", func(t *testing.T) {
		kvtest.RunBatch(t, func(t *testing.T) (kv.Store, func()) {
			return New(kv.NewMem("base"),
				WithCompression(CompressionOptions{}),
				WithEncryption(bytes.Repeat([]byte{7}, KeySize))), nil
		})
	})
}
