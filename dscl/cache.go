// Package dscl is the Data Store Client Library: the paper's core
// contribution. It layers caching, encryption, compression, expiration-time
// management with revalidation, and delta encoding on top of any data store
// client that implements the common key-value interface (edsc/kv.Store) —
// with no changes required to servers.
//
// The library supports the paper's three caching approaches:
//
//  1. Tight integration — dscl.Client is an enhanced data store client
//     whose Get/Put/Delete transparently read, write, and maintain the
//     cache (and encrypt/compress) on the application's behalf.
//  2. Explicit DSCL calls — the Cache interface and its implementations are
//     public, so applications can manage cache contents directly
//     (client.Cache() exposes the cache behind a Client).
//  3. Any store as a cache — NewStoreCache turns any kv.Store (a miniredis
//     server, a file system, another cloud store) into a DSCL cache, with
//     expiration metadata managed by the DSCL itself rather than the
//     underlying store, exactly as §III prescribes.
package dscl

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"edsc/internal/cache"
	"edsc/kv"
)

// State classifies a cache lookup.
type State int

const (
	// Miss means the key is not cached.
	Miss State = iota
	// Hit means a live entry was found.
	Hit
	// Stale means an entry was found but its expiration time has elapsed.
	// The value is still returned: it may be revalidated against the
	// server instead of re-fetched (§III, Fig. 7).
	Stale
)

func (s State) String() string {
	switch s {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Stale:
		return "stale"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Entry is a cached value plus the DSCL-managed metadata.
type Entry struct {
	Value []byte
	// Version is the store's version tag for revalidation (may be empty).
	Version kv.Version
	// ExpiresAt is the absolute expiration time; zero means no expiry.
	ExpiresAt time.Time
}

// Expired reports whether the entry is past its expiration at time now.
func (e Entry) Expired(now time.Time) bool {
	return !e.ExpiresAt.IsZero() && !now.Before(e.ExpiresAt)
}

// Cache is the DSCL cache abstraction. Implementations must be safe for
// concurrent use. Remote caches can fail, hence the errors; the in-process
// implementation never returns one.
type Cache interface {
	// Get returns the entry for key and its state. Stale entries are
	// returned, not hidden — the caller decides whether to revalidate.
	Get(ctx context.Context, key string) (Entry, State, error)

	// Put stores an entry.
	Put(ctx context.Context, key string, e Entry) error

	// Delete removes key, reporting whether it was present.
	Delete(ctx context.Context, key string) (bool, error)

	// Touch renews the lease on a cached entry after a successful
	// revalidation, updating its expiry and (optionally) version.
	Touch(ctx context.Context, key string, expiresAt time.Time, version kv.Version) (bool, error)

	// Len reports the number of cached entries.
	Len(ctx context.Context) (int, error)

	// Clear removes every entry.
	Clear(ctx context.Context) error
}

// --- in-process cache ---

// InProcessOptions configure NewInProcessCache.
type InProcessOptions struct {
	// MaxEntries bounds the entry count (0 = unbounded).
	MaxEntries int
	// MaxBytes bounds total cached value bytes (0 = unbounded).
	MaxBytes int64
	// GreedyDualSize selects greedy-dual-size replacement instead of LRU.
	GreedyDualSize bool
	// CopyOnCache stores and returns copies instead of sharing slices.
	// Sharing is faster (reads cost no copy regardless of object size,
	// the flat curves of Figs. 11–19) but the application must not mutate
	// values it passes in or gets back; copying restores full isolation
	// at the paper's noted cost ("overhead for copying the object").
	CopyOnCache bool
}

// InProcessCache is the DSCL's in-process cache (the Guava-cache analogue).
type InProcessCache struct {
	c *cache.Cache
}

var _ Cache = (*InProcessCache)(nil)

// NewInProcessCache builds an in-process cache.
func NewInProcessCache(opts InProcessOptions) *InProcessCache {
	pol := cache.LRU
	if opts.GreedyDualSize {
		pol = cache.GreedyDualSize
	}
	return &InProcessCache{c: cache.New(cache.Config{
		MaxEntries:  opts.MaxEntries,
		MaxBytes:    opts.MaxBytes,
		Policy:      pol,
		CopyOnCache: opts.CopyOnCache,
	})}
}

// Get implements Cache.
func (p *InProcessCache) Get(_ context.Context, key string) (Entry, State, error) {
	e, st := p.c.GetEntry(key)
	switch st {
	case cache.Missing:
		return Entry{}, Miss, nil
	case cache.Expired:
		return fromInternal(e), Stale, nil
	default:
		return fromInternal(e), Hit, nil
	}
}

// Put implements Cache.
func (p *InProcessCache) Put(_ context.Context, key string, e Entry) error {
	ie := cache.Entry{Value: e.Value, Version: string(e.Version)}
	if !e.ExpiresAt.IsZero() {
		ie.ExpiresAt = e.ExpiresAt.UnixNano()
	}
	p.c.PutEntry(key, ie)
	return nil
}

// Delete implements Cache.
func (p *InProcessCache) Delete(_ context.Context, key string) (bool, error) {
	return p.c.Delete(key), nil
}

// Touch implements Cache.
func (p *InProcessCache) Touch(_ context.Context, key string, expiresAt time.Time, version kv.Version) (bool, error) {
	ttl := time.Duration(0)
	if !expiresAt.IsZero() {
		ttl = time.Until(expiresAt)
		if ttl <= 0 {
			ttl = time.Nanosecond // already past: expire immediately
		}
	}
	return p.c.Touch(key, ttl, string(version)), nil
}

// Len implements Cache.
func (p *InProcessCache) Len(_ context.Context) (int, error) { return p.c.Len(), nil }

// Clear implements Cache.
func (p *InProcessCache) Clear(_ context.Context) error {
	p.c.Clear()
	return nil
}

// Stats exposes the underlying hit/miss counters.
func (p *InProcessCache) Stats() cache.Stats { return p.c.Stats() }

// icacheEntry aliases the internal cache entry for persistence code.
type icacheEntry = cache.Entry

func fromInternal(e cache.Entry) Entry {
	out := Entry{Value: e.Value, Version: kv.Version(e.Version)}
	if e.ExpiresAt != 0 {
		out.ExpiresAt = time.Unix(0, e.ExpiresAt)
	}
	return out
}

// --- store-backed cache ---

// StoreCache adapts any kv.Store into a DSCL cache: the remote-process
// cache when backed by a miniredis store, or approach 3 of §III ("any data
// store ... can function as a cache for another data store") for anything
// else. Expiration metadata travels inside the cached envelope and is
// interpreted by the DSCL, never by the backing store, so expired entries
// stay available for revalidation even on stores with no TTL support.
type StoreCache struct {
	store kv.Store
	clock func() time.Time
}

var _ Cache = (*StoreCache)(nil)

// NewStoreCache wraps store as a DSCL cache.
func NewStoreCache(store kv.Store) *StoreCache {
	return &StoreCache{store: store, clock: time.Now}
}

// envelope: "CE1" | varint(expiresAtUnixNano; 0=none) | uvarint(len(version)) | version | value
var cacheMagic = []byte("CE1")

// errNotEnvelope reports foreign data under a cache key.
var errNotEnvelope = errors.New("dscl: cached data is not a DSCL cache envelope")

func encodeEnvelope(e Entry) []byte {
	out := make([]byte, 0, len(cacheMagic)+2*binary.MaxVarintLen64+len(e.Version)+len(e.Value))
	out = append(out, cacheMagic...)
	var exp int64
	if !e.ExpiresAt.IsZero() {
		exp = e.ExpiresAt.UnixNano()
	}
	out = binary.AppendVarint(out, exp)
	out = binary.AppendUvarint(out, uint64(len(e.Version)))
	out = append(out, e.Version...)
	out = append(out, e.Value...)
	return out
}

func decodeEnvelope(data []byte) (Entry, error) {
	if len(data) < len(cacheMagic) || string(data[:len(cacheMagic)]) != string(cacheMagic) {
		return Entry{}, errNotEnvelope
	}
	p := data[len(cacheMagic):]
	exp, n := binary.Varint(p)
	if n <= 0 {
		return Entry{}, errNotEnvelope
	}
	p = p[n:]
	vlen, n := binary.Uvarint(p)
	if n <= 0 || vlen > uint64(len(p)-n) {
		return Entry{}, errNotEnvelope
	}
	p = p[n:]
	e := Entry{Version: kv.Version(p[:vlen]), Value: p[vlen:]}
	if exp != 0 {
		e.ExpiresAt = time.Unix(0, exp)
	}
	return e, nil
}

// Get implements Cache.
func (s *StoreCache) Get(ctx context.Context, key string) (Entry, State, error) {
	raw, err := s.store.Get(ctx, key)
	if err != nil {
		if kv.IsNotFound(err) {
			return Entry{}, Miss, nil
		}
		return Entry{}, Miss, err
	}
	e, err := decodeEnvelope(raw)
	if err != nil {
		return Entry{}, Miss, err
	}
	if e.Expired(s.clock()) {
		return e, Stale, nil
	}
	return e, Hit, nil
}

// Put implements Cache.
func (s *StoreCache) Put(ctx context.Context, key string, e Entry) error {
	return s.store.Put(ctx, key, encodeEnvelope(e))
}

// Delete implements Cache.
func (s *StoreCache) Delete(ctx context.Context, key string) (bool, error) {
	err := s.store.Delete(ctx, key)
	if kv.IsNotFound(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Touch implements Cache.
func (s *StoreCache) Touch(ctx context.Context, key string, expiresAt time.Time, version kv.Version) (bool, error) {
	raw, err := s.store.Get(ctx, key)
	if err != nil {
		if kv.IsNotFound(err) {
			return false, nil
		}
		return false, err
	}
	e, err := decodeEnvelope(raw)
	if err != nil {
		return false, err
	}
	e.ExpiresAt = expiresAt
	if version != kv.NoVersion {
		e.Version = version
	}
	return true, s.store.Put(ctx, key, encodeEnvelope(e))
}

// Len implements Cache.
func (s *StoreCache) Len(ctx context.Context) (int, error) { return s.store.Len(ctx) }

// Clear implements Cache.
func (s *StoreCache) Clear(ctx context.Context) error { return s.store.Clear(ctx) }
