package dscl

import (
	"bytes"
	"sync"
	"testing"

	"edsc/internal/raceflag"
)

// TestPipelineAppendRoundTrip pins the AppendTransform contract on a chained
// pipeline: dst prefixes survive and the payload round-trips.
func TestPipelineAppendRoundTrip(t *testing.T) {
	tr := Chain(Compression(CompressionOptions{}), EncryptionFromPassphrase("to-test"))
	at, ok := tr.(AppendTransform)
	if !ok {
		t.Fatal("chained pipeline does not implement AppendTransform")
	}
	value := bytes.Repeat([]byte("payload-"), 512)
	enc, err := at.EncodeTo([]byte("e:"), value)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(enc, []byte("e:")) {
		t.Fatalf("encode dst prefix clobbered: %q", enc[:2])
	}
	dec, err := at.DecodeTo([]byte("d:"), enc[2:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(dec, []byte("d:")) || !bytes.Equal(dec[2:], value) {
		t.Fatal("pipeline append round trip corrupted payload")
	}
}

// TestPipelineFallbackTransform: a pipeline mixing append-aware stages with a
// plain Transform still works — the plain stage routes through the allocating
// fallback, the rest stay pooled.
func TestPipelineFallbackTransform(t *testing.T) {
	rot := FuncTransform{
		TransformName: "rot1",
		EncodeFunc: func(b []byte) ([]byte, error) {
			out := make([]byte, len(b))
			for i, c := range b {
				out[i] = c + 1
			}
			return out, nil
		},
		DecodeFunc: func(b []byte) ([]byte, error) {
			out := make([]byte, len(b))
			for i, c := range b {
				out[i] = c - 1
			}
			return out, nil
		},
	}
	tr := Chain(rot, Compression(CompressionOptions{}), EncryptionFromPassphrase("mix"))
	value := bytes.Repeat([]byte("mixed-stage "), 300)
	enc, err := tr.Encode(value)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := tr.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, value) {
		t.Fatal("mixed pipeline round trip corrupted payload")
	}
}

// TestPipelineDecodeToErrorLeavesDst: a failing stage returns dst with its
// original length.
func TestPipelineDecodeToErrorLeavesDst(t *testing.T) {
	tr := Chain(Compression(CompressionOptions{}), EncryptionFromPassphrase("err")).(AppendTransform)
	dst := []byte("keep")
	out, err := tr.DecodeTo(dst, []byte("definitely not an envelope, far too implausible"))
	if err == nil {
		t.Fatal("garbage accepted")
	}
	if string(out) != "keep" {
		t.Fatalf("dst modified on error: %q", out)
	}
}

// TestTransformAllocsGuard pins the chained compress+encrypt round trip at
// its steady-state floor when driven through reused destination buffers: the
// only per-op allocations left are the two cipher.NewCTR streams (one per
// direction); everything else — gzip state, HMAC state, intermediate stage
// buffers — is pooled.
func TestTransformAllocsGuard(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	tr := Chain(Compression(CompressionOptions{}), EncryptionFromPassphrase("guard")).(AppendTransform)
	value := bytes.Repeat([]byte("abcdefgh"), 512)
	var encBuf, decBuf []byte
	roundTrip := func() {
		enc, err := tr.EncodeTo(encBuf[:0], value)
		if err != nil {
			t.Fatal(err)
		}
		encBuf = enc
		dec, err := tr.DecodeTo(decBuf[:0], enc)
		if err != nil {
			t.Fatal(err)
		}
		decBuf = dec
		if !bytes.Equal(dec, value) {
			t.Fatal("round trip corrupted payload")
		}
	}
	roundTrip() // warm pools and buffers
	if allocs := testing.AllocsPerRun(100, roundTrip); allocs > 2 {
		t.Fatalf("transform round trip allocated %.1f times per op, want <= 2 (the CTR streams)", allocs)
	}
}

// TestPipelineConcurrent drives one shared pipeline from many goroutines;
// under -race it proves the pooled intermediate buffers never cross streams.
func TestPipelineConcurrent(t *testing.T) {
	tr := Chain(Compression(CompressionOptions{}), EncryptionFromPassphrase("par")).(AppendTransform)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			value := bytes.Repeat([]byte{byte('a' + g), 'z'}, 700+g)
			var enc, dec []byte
			for i := 0; i < 100; i++ {
				var err error
				enc, err = tr.EncodeTo(enc[:0], value)
				if err != nil {
					t.Error(err)
					return
				}
				dec, err = tr.DecodeTo(dec[:0], enc)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(dec, value) {
					t.Errorf("goroutine %d: round trip corrupted", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
