package dscl

import (
	"context"
	"sync"
)

// This file implements the second piece of the paper's future work (§VII):
// "new techniques for providing data consistency between different data
// stores ... the most compelling use case is providing stronger cache
// consistency".
//
// A Hub connects enhanced clients that share a data store. When any
// connected client writes or deletes a key, the hub notifies every other
// client, which invalidates its cached entry — so a reader behind a
// different cache observes the new value on its next Get instead of waiting
// for its TTL to lapse. The writing client is excluded (its own cache was
// just updated by its write policy).
//
// The hub is process-local; clients in different processes would bridge a
// hub over a shared channel (e.g. the miniredis server). The consistency
// upgrade is from TTL-bounded staleness to write-triggered invalidation;
// it is not linearizability — notification races with in-flight reads.
type Hub struct {
	mu   sync.RWMutex
	subs map[int]func(key string)
	next int
}

// NewHub creates an empty invalidation hub.
func NewHub() *Hub { return &Hub{subs: make(map[int]func(string))} }

// subscribe registers fn and returns its id.
func (h *Hub) subscribe(fn func(key string)) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.next
	h.next++
	h.subs[id] = fn
	return id
}

// unsubscribe removes a subscriber.
func (h *Hub) unsubscribe(id int) {
	h.mu.Lock()
	delete(h.subs, id)
	h.mu.Unlock()
}

// publish invalidates key on every subscriber except the sender.
// Callbacks run synchronously, so when a Put returns, sibling caches have
// already dropped the key.
func (h *Hub) publish(sender int, key string) {
	h.mu.RLock()
	fns := make([]func(string), 0, len(h.subs))
	for id, fn := range h.subs {
		if id != sender {
			fns = append(fns, fn)
		}
	}
	h.mu.RUnlock()
	for _, fn := range fns {
		fn(key)
	}
}

// Subscribers reports how many clients are connected (for tests and
// monitoring).
func (h *Hub) Subscribers() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.subs)
}

// WithInvalidationHub connects the client to a Hub. Must be combined with
// WithCache; without a cache there is nothing to invalidate, and the client
// still publishes its writes for others.
func WithInvalidationHub(h *Hub) Option {
	return func(cl *Client) {
		cl.hub = h
		cl.hubID = h.subscribe(func(key string) {
			if cl.cache == nil {
				return
			}
			dropped, err := cl.cache.Delete(context.Background(), key)
			if err != nil {
				cl.cacheErrs.Add(1)
				return
			}
			if dropped {
				cl.invalidations.Add(1)
			}
		})
	}
}

// Invalidations reports how many keys this client dropped due to writes by
// sibling clients on the hub.
func (cl *Client) Invalidations() int64 { return cl.invalidations.Load() }

// notifyWrite publishes a local write to the hub, if any.
func (cl *Client) notifyWrite(key string) {
	if cl.hub != nil {
		cl.hub.publish(cl.hubID, key)
	}
}

// DetachHub disconnects the client from its hub (also called by Close).
func (cl *Client) DetachHub() {
	if cl.hub != nil {
		cl.hub.unsubscribe(cl.hubID)
		cl.hub = nil
	}
}
