package dscl

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func testKey(t *testing.T) []byte {
	t.Helper()
	key := make([]byte, KeySize)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	return key
}

func TestCompressionTransform(t *testing.T) {
	c := Compression(CompressionOptions{})
	in := bytes.Repeat([]byte("squeeze me "), 500)
	enc, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(in) {
		t.Fatalf("no compression: %d -> %d", len(in), len(enc))
	}
	dec, err := c.Decode(enc)
	if err != nil || !bytes.Equal(dec, in) {
		t.Fatal("round trip failed")
	}
	if c.Name() != "gzip" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestEncryptionTransform(t *testing.T) {
	e, err := Encryption(testKey(t))
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("secret payload")
	enc, err := e.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(enc, in) {
		t.Fatal("plaintext visible in ciphertext")
	}
	dec, err := e.Decode(enc)
	if err != nil || !bytes.Equal(dec, in) {
		t.Fatal("round trip failed")
	}
}

func TestEncryptionBadKey(t *testing.T) {
	if _, err := Encryption([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestChainCompressThenEncrypt(t *testing.T) {
	tr := Chain(Compression(CompressionOptions{}), EncryptionFromPassphrase("pw"))
	if tr.Name() != "gzip+aes128" {
		t.Fatalf("Name = %q", tr.Name())
	}
	in := bytes.Repeat([]byte("compress then encrypt "), 400)
	enc, err := tr.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	// Compression ran first, so the ciphertext is much smaller than the
	// plaintext; the reverse order could not shrink at all.
	if len(enc) >= len(in)/2 {
		t.Fatalf("chain did not compress before encrypting: %d -> %d", len(in), len(enc))
	}
	dec, err := tr.Decode(enc)
	if err != nil || !bytes.Equal(dec, in) {
		t.Fatal("chain round trip failed")
	}
}

func TestChainFlattensAndSkipsNil(t *testing.T) {
	inner := Chain(Compression(CompressionOptions{}), nil)
	tr := Chain(nil, inner, EncryptionFromPassphrase("pw"))
	if tr.Name() != "gzip+aes128" {
		t.Fatalf("Name = %q", tr.Name())
	}
	single := Chain(Compression(CompressionOptions{}))
	if single.Name() != "gzip" {
		t.Fatalf("single chain = %q", single.Name())
	}
}

func TestChainDecodeErrorNamesStage(t *testing.T) {
	tr := Chain(Compression(CompressionOptions{}), EncryptionFromPassphrase("pw"))
	if _, err := tr.Decode([]byte("garbage that is long enough to not be an envelope")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestFuncTransform(t *testing.T) {
	rot := FuncTransform{
		TransformName: "rot1",
		EncodeFunc: func(b []byte) ([]byte, error) {
			out := make([]byte, len(b))
			for i, c := range b {
				out[i] = c + 1
			}
			return out, nil
		},
		DecodeFunc: func(b []byte) ([]byte, error) {
			out := make([]byte, len(b))
			for i, c := range b {
				out[i] = c - 1
			}
			return out, nil
		},
	}
	enc, _ := rot.Encode([]byte("abc"))
	if string(enc) != "bcd" {
		t.Fatalf("encode = %q", enc)
	}
	dec, _ := rot.Decode(enc)
	if string(dec) != "abc" {
		t.Fatalf("decode = %q", dec)
	}
	if rot.Name() != "rot1" {
		t.Fatalf("Name = %q", rot.Name())
	}
	if (FuncTransform{}).Name() != "func" {
		t.Fatal("default name wrong")
	}
}

func TestPropertyChainRoundTrip(t *testing.T) {
	tr := Chain(Compression(CompressionOptions{}), EncryptionFromPassphrase("prop"))
	prop := func(in []byte) bool {
		enc, err := tr.Encode(in)
		if err != nil {
			return false
		}
		dec, err := tr.Decode(enc)
		return err == nil && bytes.Equal(dec, in)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
