package dscl

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"edsc/kv"
)

// twoClients builds two enhanced clients over one shared store, each with
// its own in-process cache, connected through a hub.
func twoClients(t *testing.T, hub *Hub) (*Client, *Client, kv.Store) {
	t.Helper()
	store := kv.NewMem("shared")
	a := New(store,
		WithCache(NewInProcessCache(InProcessOptions{})),
		WithInvalidationHub(hub))
	b := New(store,
		WithCache(NewInProcessCache(InProcessOptions{})),
		WithInvalidationHub(hub))
	return a, b, store
}

func TestHubInvalidatesSiblingCaches(t *testing.T) {
	ctx := context.Background()
	hub := NewHub()
	a, b, _ := twoClients(t, hub)

	if err := a.Put(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// B reads and caches v1.
	if v, err := b.Get(ctx, "k"); err != nil || string(v) != "v1" {
		t.Fatalf("b Get = %q, %v", v, err)
	}
	// A writes v2; without the hub, B would keep serving v1 until TTL.
	if err := a.Put(ctx, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, err := b.Get(ctx, "k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("b sees %q after a's write, want v2", v)
	}
	if b.Invalidations() == 0 {
		t.Fatal("b recorded no invalidations")
	}
	// A's own cache kept its write-through value (no self-invalidation).
	if a.Invalidations() != 0 {
		t.Fatal("a invalidated its own write")
	}
	aStats := a.Stats()
	if _, err := a.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if a.Stats().CacheHits != aStats.CacheHits+1 {
		t.Fatal("a's write-through entry was lost")
	}
}

func TestHubInvalidatesOnDelete(t *testing.T) {
	ctx := context.Background()
	hub := NewHub()
	a, b, _ := twoClients(t, hub)
	_ = a.Put(ctx, "k", []byte("v"))
	if _, err := b.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if err := a.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(ctx, "k"); !kv.IsNotFound(err) {
		t.Fatalf("b Get after a's delete err = %v, want ErrNotFound", err)
	}
}

func TestHubSubscriberCountAndDetach(t *testing.T) {
	hub := NewHub()
	a, b, _ := twoClients(t, hub)
	if hub.Subscribers() != 2 {
		t.Fatalf("Subscribers = %d", hub.Subscribers())
	}
	a.DetachHub()
	if hub.Subscribers() != 1 {
		t.Fatalf("Subscribers after detach = %d", hub.Subscribers())
	}
	// Detach is idempotent; Close detaches too.
	a.DetachHub()
	_ = b.Close()
	if hub.Subscribers() != 0 {
		t.Fatalf("Subscribers after close = %d", hub.Subscribers())
	}
}

func TestHubDetachedClientStopsReceiving(t *testing.T) {
	ctx := context.Background()
	hub := NewHub()
	a, b, _ := twoClients(t, hub)
	_ = a.Put(ctx, "k", []byte("v1"))
	if _, err := b.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	b.DetachHub()
	_ = a.Put(ctx, "k", []byte("v2"))
	// B kept its stale entry: it no longer participates in coherence.
	v, err := b.Get(ctx, "k")
	if err != nil || string(v) != "v1" {
		t.Fatalf("detached b = %q, %v; want stale v1", v, err)
	}
}

func TestHubWriterWithoutCacheStillPublishes(t *testing.T) {
	ctx := context.Background()
	hub := NewHub()
	store := kv.NewMem("shared")
	writer := New(store, WithInvalidationHub(hub)) // no cache
	reader := New(store,
		WithCache(NewInProcessCache(InProcessOptions{})),
		WithInvalidationHub(hub))

	_ = writer.Put(ctx, "k", []byte("v1"))
	if _, err := reader.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	_ = writer.Put(ctx, "k", []byte("v2"))
	v, err := reader.Get(ctx, "k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("reader = %q, %v", v, err)
	}
}

func TestHubConcurrentWriters(t *testing.T) {
	ctx := context.Background()
	hub := NewHub()
	store := kv.NewMem("shared")
	const n = 4
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = New(store,
			WithCache(NewInProcessCache(InProcessOptions{CopyOnCache: true})),
			WithInvalidationHub(hub))
	}
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				key := fmt.Sprintf("k%d", j%10)
				if j%2 == 0 {
					if err := cl.Put(ctx, key, []byte{byte(i)}); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := cl.Get(ctx, key); err != nil && !kv.IsNotFound(err) {
					t.Error(err)
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	// After quiescence every client converges on the store's value.
	for j := 0; j < 10; j++ {
		key := fmt.Sprintf("k%d", j)
		want, err := store.Get(ctx, key)
		if err != nil {
			continue
		}
		for i, cl := range clients {
			got, err := cl.Get(ctx, key)
			if err != nil || string(got) != string(want) {
				t.Fatalf("client %d sees %q for %s, store has %q (%v)", i, got, key, want, err)
			}
		}
	}
}
