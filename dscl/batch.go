package dscl

import (
	"context"
	"time"

	"edsc/kv"
	"edsc/monitor"
)

var _ kv.Batch = (*Client)(nil)

// GetMulti implements kv.Batch with miss coalescing: every key the cache can
// answer is served locally, and all remaining keys are fetched from the
// store in a single batched round trip (§III's caching integrated with the
// bulk interface). Fetched entries enter the cache with their version and
// expiration metadata exactly as a single-key fetch would.
//
// Partial-result semantics follow kv.GetMulti: absent keys are simply
// missing from the returned map, and on error the partial map assembled so
// far is returned with the first error.
func (cl *Client) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cl.closed.Load() {
		return nil, kv.ErrClosed
	}
	out := make(map[string][]byte, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	miss := make([]string, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if err := kv.CheckKey(k); err != nil {
			return nil, err
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		if cl.cache == nil {
			miss = append(miss, k)
			continue
		}
		e, state, err := cl.cache.Get(ctx, k)
		switch {
		case err != nil:
			cl.cacheErrs.Add(1)
			miss = append(miss, k)
		case state == Hit && isNegative(e):
			cl.negHits.Add(1) // definitively absent: stays out of the map
		case state == Hit:
			v, derr := cl.cachedToPlain(e.Value)
			if derr != nil {
				return out, derr
			}
			cl.hits.Add(1)
			out[k] = v
		default:
			// Stale entries join the batch instead of revalidating one by
			// one: the batch is a single round trip either way, so a full
			// fresh value costs nothing extra here.
			cl.misses.Add(1)
			miss = append(miss, k)
		}
	}
	if len(miss) == 0 {
		return out, nil
	}

	ctx, _ = monitor.WithRequestID(ctx)
	if cl.chain != nil {
		// Delta chains materialize each value from a chain of physical
		// records; there is no batch fast path through them.
		for _, k := range miss {
			v, err := cl.Get(ctx, k)
			if kv.IsNotFound(err) {
				continue
			}
			if err != nil {
				return out, err
			}
			out[k] = v
		}
		return out, nil
	}

	start := time.Now()
	cl.reads.Add(1) // one batched store read, whatever the key count
	got, err := kv.GetMultiVersioned(ctx, cl.store, miss)
	monitor.AddSpan(ctx, "dscl", "batch_fetch", start, err != nil)
	if err != nil {
		return out, err
	}
	for _, k := range miss {
		vv, ok := got[k]
		if !ok {
			// The store no longer has it: drop any stale copy, remember the
			// miss with a tombstone when negative caching is on.
			if cl.cache != nil {
				if _, derr := cl.cache.Delete(ctx, k); derr != nil {
					cl.cacheErrs.Add(1)
				}
				cl.cacheNegative(ctx, k)
			}
			continue
		}
		plain, derr := cl.decode(vv.Value)
		if derr != nil {
			return out, derr
		}
		cl.cachePut(ctx, k, plain, vv.Value, vv.Version)
		out[k] = plain
	}
	return out, nil
}

// PutMulti implements kv.Batch: transform every value, write the whole set
// in one batched round trip, then apply the write policy per key. Batch
// writes return no versions, so write-through entries carry kv.NoVersion and
// revalidate with a full fetch once they expire.
func (cl *Client) PutMulti(ctx context.Context, pairs map[string][]byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if cl.closed.Load() {
		return kv.ErrClosed
	}
	if len(pairs) == 0 {
		return nil
	}
	for k := range pairs {
		if err := kv.CheckKey(k); err != nil {
			return err
		}
	}
	ctx, _ = monitor.WithRequestID(ctx)
	if cl.chain != nil {
		// Delta encoding diffs each write against the key's previous
		// version; that is inherently per key.
		for k, v := range pairs {
			if err := cl.Put(ctx, k, v); err != nil {
				return err
			}
		}
		return nil
	}
	encoded := make(map[string][]byte, len(pairs))
	for k, v := range pairs {
		e, err := cl.encode(v)
		if err != nil {
			return err
		}
		encoded[k] = e
	}
	start := time.Now()
	cl.writes.Add(1) // one batched store write
	err := kv.PutMulti(ctx, cl.store, encoded)
	monitor.AddSpan(ctx, "dscl", "batch_put", start, err != nil)
	if err != nil {
		return err
	}
	for k, v := range pairs {
		cl.notifyWrite(k)
		if cl.cache == nil {
			continue
		}
		switch cl.policy {
		case WriteThrough:
			// Cache a private copy: the caller may mutate its slice later.
			plain := append([]byte(nil), v...)
			cl.cachePut(ctx, k, plain, encoded[k], kv.NoVersion)
		case WriteInvalidate:
			if _, derr := cl.cache.Delete(ctx, k); derr != nil {
				cl.cacheErrs.Add(1)
			}
		case WriteAround:
		}
	}
	return nil
}
