package dscl

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"
	"time"

	"edsc/kv"
)

func testCaches(t *testing.T) map[string]Cache {
	return map[string]Cache{
		"inprocess": NewInProcessCache(InProcessOptions{}),
		"store":     NewStoreCache(kv.NewMem("cachestore")),
	}
}

func TestCachePutGetDelete(t *testing.T) {
	ctx := context.Background()
	for name, c := range testCaches(t) {
		t.Run(name, func(t *testing.T) {
			e := Entry{Value: []byte("v"), Version: "etag1"}
			if err := c.Put(ctx, "k", e); err != nil {
				t.Fatal(err)
			}
			got, state, err := c.Get(ctx, "k")
			if err != nil || state != Hit {
				t.Fatalf("Get = %v, %v", state, err)
			}
			if string(got.Value) != "v" || got.Version != "etag1" {
				t.Fatalf("entry = %+v", got)
			}
			if n, _ := c.Len(ctx); n != 1 {
				t.Fatalf("Len = %d", n)
			}
			ok, err := c.Delete(ctx, "k")
			if err != nil || !ok {
				t.Fatalf("Delete = %v, %v", ok, err)
			}
			ok, err = c.Delete(ctx, "k")
			if err != nil || ok {
				t.Fatalf("second Delete = %v, %v", ok, err)
			}
			if _, state, _ := c.Get(ctx, "k"); state != Miss {
				t.Fatalf("state after delete = %v", state)
			}
		})
	}
}

func TestCacheMiss(t *testing.T) {
	ctx := context.Background()
	for name, c := range testCaches(t) {
		t.Run(name, func(t *testing.T) {
			if _, state, err := c.Get(ctx, "ghost"); err != nil || state != Miss {
				t.Fatalf("Get(ghost) = %v, %v", state, err)
			}
		})
	}
}

func TestCacheStaleEntriesReturned(t *testing.T) {
	ctx := context.Background()
	for name, c := range testCaches(t) {
		t.Run(name, func(t *testing.T) {
			e := Entry{Value: []byte("old"), Version: "v1", ExpiresAt: time.Now().Add(-time.Second)}
			if err := c.Put(ctx, "k", e); err != nil {
				t.Fatal(err)
			}
			got, state, err := c.Get(ctx, "k")
			if err != nil || state != Stale {
				t.Fatalf("Get = %v, %v, want Stale", state, err)
			}
			if string(got.Value) != "old" || got.Version != "v1" {
				t.Fatalf("stale entry lost data: %+v", got)
			}
		})
	}
}

func TestCacheTouchRenewsLease(t *testing.T) {
	ctx := context.Background()
	for name, c := range testCaches(t) {
		t.Run(name, func(t *testing.T) {
			e := Entry{Value: []byte("v"), Version: "v1", ExpiresAt: time.Now().Add(-time.Second)}
			_ = c.Put(ctx, "k", e)
			ok, err := c.Touch(ctx, "k", time.Now().Add(time.Hour), "v2")
			if err != nil || !ok {
				t.Fatalf("Touch = %v, %v", ok, err)
			}
			got, state, _ := c.Get(ctx, "k")
			if state != Hit || got.Version != "v2" {
				t.Fatalf("after Touch: %v, %+v", state, got)
			}
			ok, err = c.Touch(ctx, "absent", time.Now().Add(time.Hour), "")
			if err != nil || ok {
				t.Fatalf("Touch(absent) = %v, %v", ok, err)
			}
		})
	}
}

func TestCacheClear(t *testing.T) {
	ctx := context.Background()
	for name, c := range testCaches(t) {
		t.Run(name, func(t *testing.T) {
			_ = c.Put(ctx, "a", Entry{Value: []byte("1")})
			_ = c.Put(ctx, "b", Entry{Value: []byte("2")})
			if err := c.Clear(ctx); err != nil {
				t.Fatal(err)
			}
			if n, _ := c.Len(ctx); n != 0 {
				t.Fatalf("Len after Clear = %d", n)
			}
		})
	}
}

func TestCacheNoExpiryNeverStale(t *testing.T) {
	ctx := context.Background()
	for name, c := range testCaches(t) {
		t.Run(name, func(t *testing.T) {
			_ = c.Put(ctx, "k", Entry{Value: []byte("v")})
			_, state, _ := c.Get(ctx, "k")
			if state != Hit {
				t.Fatalf("state = %v", state)
			}
		})
	}
}

func TestEnvelopeRoundTripProperty(t *testing.T) {
	prop := func(value []byte, version string, expNanos int64) bool {
		e := Entry{Value: value, Version: kv.Version(version)}
		if expNanos != 0 {
			e.ExpiresAt = time.Unix(0, expNanos)
		}
		got, err := decodeEnvelope(encodeEnvelope(e))
		if err != nil {
			return false
		}
		sameExp := got.ExpiresAt.Equal(e.ExpiresAt) || (got.ExpiresAt.IsZero() && e.ExpiresAt.IsZero())
		return bytes.Equal(got.Value, e.Value) && got.Version == e.Version && sameExp
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{nil, []byte("x"), []byte("CE9aaaa"), []byte("CE")} {
		if _, err := decodeEnvelope(bad); err == nil {
			t.Errorf("decodeEnvelope(%q) succeeded", bad)
		}
	}
}

func TestStoreCacheSurfacesStoreErrors(t *testing.T) {
	ctx := context.Background()
	mem := kv.NewMem("m")
	c := NewStoreCache(mem)
	_ = c.Put(ctx, "k", Entry{Value: []byte("v")})
	_ = mem.Close()
	if _, _, err := c.Get(ctx, "k"); err == nil {
		t.Fatal("closed backing store not surfaced")
	}
	if err := c.Put(ctx, "k", Entry{}); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
}

func TestStoreCacheForeignDataIsError(t *testing.T) {
	ctx := context.Background()
	mem := kv.NewMem("m")
	_ = mem.Put(ctx, "k", []byte("not an envelope"))
	c := NewStoreCache(mem)
	if _, _, err := c.Get(ctx, "k"); err == nil {
		t.Fatal("foreign cache data not rejected")
	}
}

func TestInProcessCacheEviction(t *testing.T) {
	ctx := context.Background()
	c := NewInProcessCache(InProcessOptions{MaxEntries: 4})
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		_ = c.Put(ctx, k, Entry{Value: []byte(k)})
	}
	n, _ := c.Len(ctx)
	if n > 4 {
		t.Fatalf("Len = %d > bound", n)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestInProcessCopyOnCache(t *testing.T) {
	ctx := context.Background()
	c := NewInProcessCache(InProcessOptions{CopyOnCache: true})
	buf := []byte("orig")
	_ = c.Put(ctx, "k", Entry{Value: buf})
	buf[0] = 'X'
	got, _, _ := c.Get(ctx, "k")
	if string(got.Value) != "orig" {
		t.Fatalf("copy-on-cache leaked mutation: %q", got.Value)
	}
}
